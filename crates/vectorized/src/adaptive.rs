//! Micro-adaptive selection cascades (§8.4).
//!
//! "Vectorized execution is interpreted, and thus amenable for
//! adaptivity. The combination of fine-grained profiling and adaptivity
//! allows VectorWise to make various micro-adaptive decisions \[39\]."
//!
//! This module implements the canonical example: adaptive re-ordering of
//! a conjunctive filter cascade. Because every primitive call processes
//! a whole vector, per-call profiling (TSC cycles, observed selectivity)
//! costs almost nothing, and the interpreter can swap the cascade order
//! *mid-query* — something a fused compiled loop cannot do without
//! recompilation. Predicates are ranked by the classic
//! `cost / (1 - selectivity)` rule (cheapest most-selective first).

use dbep_runtime::counters::rdtsc;

/// One predicate of a cascade. `sel` is `None` for the dense (first)
/// position and `Some(input selection vector)` otherwise; implementations
/// dispatch to the matching `*_dense` / `*_sparse` primitive.
pub trait CascadePredicate {
    fn eval(&self, chunk: std::ops::Range<usize>, sel: Option<&[u32]>, out: &mut Vec<u32>) -> usize;
}

impl<F> CascadePredicate for F
where
    F: Fn(std::ops::Range<usize>, Option<&[u32]>, &mut Vec<u32>) -> usize,
{
    fn eval(&self, chunk: std::ops::Range<usize>, sel: Option<&[u32]>, out: &mut Vec<u32>) -> usize {
        self(chunk, sel, out)
    }
}

impl CascadePredicate for Box<dyn CascadePredicate + '_> {
    fn eval(&self, chunk: std::ops::Range<usize>, sel: Option<&[u32]>, out: &mut Vec<u32>) -> usize {
        (**self).eval(chunk, sel, out)
    }
}

#[derive(Clone, Copy, Default)]
struct PredStats {
    tuples_in: u64,
    tuples_out: u64,
    cycles: u64,
}

impl PredStats {
    fn selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            0.5 // uninformed prior
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }

    fn cost_per_tuple(&self) -> f64 {
        if self.tuples_in == 0 {
            1.0
        } else {
            self.cycles as f64 / self.tuples_in as f64
        }
    }

    /// Classic conjunct ranking: ascending `cost / (1 - selectivity)`.
    fn rank(&self) -> f64 {
        let drop_rate = (1.0 - self.selectivity()).max(1e-6);
        self.cost_per_tuple() / drop_rate
    }
}

/// An adaptive conjunctive filter: evaluates its predicates in the
/// currently-believed cheapest order and re-ranks every
/// `reorder_interval` chunks.
pub struct AdaptiveCascade<P> {
    preds: Vec<P>,
    order: Vec<usize>,
    stats: Vec<PredStats>,
    chunks_seen: usize,
    reorder_interval: usize,
    reorders: usize,
    scratch: Vec<Vec<u32>>,
}

impl<P: CascadePredicate> AdaptiveCascade<P> {
    /// `reorder_interval` follows VectorWise's idea of periodic
    /// re-evaluation; 64 chunks ≈ 64 K tuples at the default vector
    /// size.
    pub fn new(preds: Vec<P>, reorder_interval: usize) -> Self {
        assert!(!preds.is_empty(), "cascade needs at least one predicate");
        let n = preds.len();
        AdaptiveCascade {
            preds,
            order: (0..n).collect(),
            stats: vec![PredStats::default(); n],
            chunks_seen: 0,
            reorder_interval: reorder_interval.max(1),
            reorders: 0,
            scratch: vec![Vec::new(); 2],
        }
    }

    /// Current evaluation order (indexes into the predicate list).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// How many times the order changed so far.
    pub fn reorders(&self) -> usize {
        self.reorders
    }

    /// Observed selectivity of predicate `i` so far.
    pub fn observed_selectivity(&self, i: usize) -> f64 {
        self.stats[i].selectivity()
    }

    /// Run the cascade over one chunk; the surviving selection vector is
    /// left in `out`. Returns the number of survivors.
    pub fn eval_chunk(&mut self, chunk: std::ops::Range<usize>, out: &mut Vec<u32>) -> usize {
        let mut current: Option<usize> = None; // scratch slot holding input
        let mut n_in = chunk.len() as u64;
        for (step, &p) in self.order.iter().enumerate() {
            let last = step + 1 == self.order.len();
            // Ping-pong between the two scratch buffers; final step
            // writes straight into `out`.
            let t0 = rdtsc();
            let produced = {
                let (input, target) = match current {
                    None => (None, 0),
                    Some(slot) => (Some(slot), 1 - slot),
                };
                let in_sel_owned = input.map(|slot| std::mem::take(&mut self.scratch[slot]));
                let dst: &mut Vec<u32> = if last { out } else { &mut self.scratch[target] };
                let k = self.preds[p].eval(chunk.clone(), in_sel_owned.as_deref(), dst);
                if let (Some(slot), Some(buf)) = (input, in_sel_owned) {
                    self.scratch[slot] = buf; // return the borrowed buffer
                }
                if !last {
                    current = Some(target);
                }
                k
            };
            let st = &mut self.stats[p];
            st.cycles += rdtsc().saturating_sub(t0);
            st.tuples_in += n_in;
            st.tuples_out += produced as u64;
            n_in = produced as u64;
            if produced == 0 {
                if last {
                    return 0;
                }
                out.clear();
                return 0;
            }
        }
        self.chunks_seen += 1;
        if self.chunks_seen.is_multiple_of(self.reorder_interval) {
            self.maybe_reorder();
        }
        out.len()
    }

    fn maybe_reorder(&mut self) {
        let mut new_order = self.order.clone();
        new_order.sort_by(|&a, &b| {
            self.stats[a]
                .rank()
                .partial_cmp(&self.stats[b].rank())
                .expect("finite ranks")
        });
        if new_order != self.order {
            self.order = new_order;
            self.reorders += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sel;
    use crate::SimdPolicy;

    /// Build a Q6-style cascade over two columns with very different
    /// selectivities, deliberately ordered worst-first.
    fn cascade<'a>(
        cheap_selective: &'a [i32],
        expensive_unselective: &'a [i64],
    ) -> AdaptiveCascade<Box<dyn CascadePredicate + 'a>> {
        let p_bad: Box<dyn CascadePredicate> = Box::new(
            move |chunk: std::ops::Range<usize>, in_sel: Option<&[u32]>, out: &mut Vec<u32>| match in_sel {
                None => sel::sel_lt_i64_dense(
                    &expensive_unselective[chunk.clone()],
                    i64::MAX - 1,
                    chunk.start as u32,
                    out,
                    SimdPolicy::Scalar,
                ),
                Some(s) => {
                    sel::sel_lt_i64_sparse(expensive_unselective, i64::MAX - 1, s, out, SimdPolicy::Scalar)
                }
            },
        );
        let p_good: Box<dyn CascadePredicate> = Box::new(
            move |chunk: std::ops::Range<usize>, in_sel: Option<&[u32]>, out: &mut Vec<u32>| match in_sel {
                None => sel::sel_lt_i32_dense(
                    &cheap_selective[chunk.clone()],
                    10,
                    chunk.start as u32,
                    out,
                    SimdPolicy::Scalar,
                ),
                Some(s) => sel::sel_lt_i32_sparse(cheap_selective, 10, s, out, SimdPolicy::Scalar),
            },
        );
        // Worst order first: the pass-everything predicate leads.
        AdaptiveCascade::new(vec![p_bad, p_good], 4)
    }

    #[test]
    fn converges_to_selective_first_and_keeps_results() {
        let n = 64 * 1024;
        let cheap: Vec<i32> = (0..n as i32).map(|i| i % 100).collect(); // 10% pass
        let expensive: Vec<i64> = vec![0; n]; // 100% pass
        let model: Vec<u32> = (0..n as u32).filter(|&i| cheap[i as usize] < 10).collect();

        let mut c = cascade(&cheap, &expensive);
        assert_eq!(c.order(), &[0, 1], "starts in the given order");
        let mut got = Vec::new();
        let mut out = Vec::new();
        for start in (0..n).step_by(1024) {
            c.eval_chunk(start..(start + 1024).min(n), &mut out);
            got.extend_from_slice(&out);
        }
        assert_eq!(got, model, "adaptivity must never change results");
        assert_eq!(c.order(), &[1, 0], "selective predicate must migrate to front");
        assert!(c.reorders() >= 1);
        assert!(c.observed_selectivity(1) < 0.2);
        assert!(c.observed_selectivity(0) > 0.9);
    }

    #[test]
    fn zero_survivors_short_circuits() {
        let cheap: Vec<i32> = vec![50; 4096]; // nothing < 10
        let expensive: Vec<i64> = vec![0; 4096];
        let mut c = cascade(&cheap, &expensive);
        let mut out = Vec::new();
        assert_eq!(c.eval_chunk(0..1024, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_cascade_rejected() {
        let _ = AdaptiveCascade::<Box<dyn CascadePredicate>>::new(vec![], 4);
    }
}
