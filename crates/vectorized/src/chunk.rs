//! Vector-at-a-time chunk delivery on top of morsel-driven scans.
//!
//! A worker claims morsels (§6.1) and slices them into vectors of the
//! configured size; §4.3's Fig. 5 sweeps this size from 1 to "Max"
//! (full materialization, the MonetDB end of the spectrum). With the
//! shared scheduler, scan bodies receive one morsel range at a time and
//! slice it locally via [`chunks`]; [`ChunkSource`] remains for code
//! that drives a dispenser directly.

use dbep_runtime::Morsels;
use std::ops::Range;

/// The paper's default vector size ("1,000 tuples, the default in
/// VectorWise"; we use the power of two the reference implementation
/// picks).
pub const DEFAULT_VECTOR_SIZE: usize = 1024;

/// Slice one morsel range into consecutive vectors of at most
/// `vector_size` tuples — the per-morsel chunk loop of a scheduler-run
/// scan body. Chunks never cross the morsel boundary (same invariant
/// the dispenser-driven [`ChunkSource`] keeps).
pub fn chunks(range: Range<usize>, vector_size: usize) -> Chunks {
    assert!(vector_size > 0, "vector size must be positive");
    Chunks { range, vector_size }
}

/// Iterator of vector-sized sub-ranges; see [`chunks`].
pub struct Chunks {
    range: Range<usize>,
    vector_size: usize,
}

impl Iterator for Chunks {
    type Item = Range<usize>;

    #[inline]
    fn next(&mut self) -> Option<Range<usize>> {
        if self.range.is_empty() {
            return None;
        }
        let start = self.range.start;
        let end = start.saturating_add(self.vector_size).min(self.range.end);
        self.range.start = end;
        Some(start..end)
    }
}

/// Yields consecutive chunk ranges of at most `vector_size` tuples,
/// claiming new morsels from the shared dispenser as needed.
pub struct ChunkSource<'a> {
    morsels: &'a Morsels,
    current: Range<usize>,
    vector_size: usize,
}

impl<'a> ChunkSource<'a> {
    pub fn new(morsels: &'a Morsels, vector_size: usize) -> Self {
        assert!(vector_size > 0, "vector size must be positive");
        ChunkSource {
            morsels,
            current: 0..0,
            vector_size,
        }
    }

    /// Next chunk of up to `vector_size` tuples, or `None` when the scan
    /// is exhausted.
    #[inline]
    pub fn next_chunk(&mut self) -> Option<Range<usize>> {
        if self.current.is_empty() {
            self.current = self.morsels.claim()?;
        }
        let start = self.current.start;
        let end = (start + self.vector_size).min(self.current.end);
        self.current.start = end;
        Some(start..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_the_relation() {
        let m = Morsels::with_size(10_000, 4096);
        let mut src = ChunkSource::new(&m, 1000);
        let mut covered = 0usize;
        let mut expected_start = 0usize;
        while let Some(r) = src.next_chunk() {
            assert_eq!(r.start, expected_start);
            assert!(r.len() <= 1000 && !r.is_empty());
            covered += r.len();
            expected_start = r.end;
        }
        assert_eq!(covered, 10_000);
    }

    #[test]
    fn chunk_never_crosses_morsel_boundary() {
        let m = Morsels::with_size(5000, 1024);
        let mut src = ChunkSource::new(&m, 1000);
        while let Some(r) = src.next_chunk() {
            assert_eq!(r.start / 1024, (r.end - 1) / 1024, "chunk {r:?} crosses a morsel");
        }
    }

    #[test]
    fn chunks_tile_a_morsel_range() {
        let tiles: Vec<_> = chunks(100..1100, 256).collect();
        assert_eq!(tiles, vec![100..356, 356..612, 612..868, 868..1100]);
        assert!(chunks(7..7, 256).next().is_none());
        // Degenerate "Max" vector size must not overflow.
        assert_eq!(chunks(5..50, usize::MAX).collect::<Vec<_>>(), vec![5..50]);
    }

    #[test]
    fn vector_size_one_degrades_to_volcano() {
        let m = Morsels::new(5);
        let mut src = ChunkSource::new(&m, 1);
        let mut n = 0;
        while let Some(r) = src.next_chunk() {
            assert_eq!(r.len(), 1);
            n += 1;
        }
        assert_eq!(n, 5);
    }
}
