//! Gather primitives (§2.2, §5.2 Fig. 8b).
//!
//! * Probe-side gathers materialize `col[sel[i]]` into dense vectors.
//! * Build-side gathers (`buildGather` in Fig. 2b) copy one field out of
//!   matched hash-table entries into buffers for the next operator.

use crate::SimdPolicy;
use dbep_runtime::{simd_level, JoinHt, SimdLevel};

#[inline(always)]
fn prep<T: Copy + Default>(out: &mut Vec<T>, n: usize) {
    out.clear();
    out.resize(n, T::default());
}

/// `out[i] = col[sel[i]]` for i64 columns (scalar or AVX-512 gather).
pub fn gather_i64(col: &[i64], sel: &[u32], policy: SimdPolicy, out: &mut Vec<i64>) {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level(); sel indexes col.
        unsafe { gather_i64_avx512(col, sel, out) };
        return;
    }
    let _ = policy;
    gather_i64_scalar(col, sel, out);
}

/// Scalar twin of the AVX-512 gather ladder.
fn gather_i64_scalar(col: &[i64], sel: &[u32], out: &mut Vec<i64>) {
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        debug_assert!((i as usize) < col.len());
        // SAFETY: selection vectors index their source table.
        *o = unsafe { *col.get_unchecked(i as usize) };
    }
}

/// # Safety
/// Requires AVX-512F — reached only via the `Simd` dispatch arm, which
/// checks [`simd_level`]. Every `sel` index must be in bounds for `col`:
/// selection vectors are produced by prior primitives over the same table.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn gather_i64_avx512(col: &[i64], sel: &[u32], out: &mut Vec<i64>) {
    use std::arch::x86_64::*;
    prep(out, sel.len());
    let p = out.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= sel.len() {
        let iv = _mm256_loadu_si256(sel.as_ptr().add(i) as *const _);
        let v = _mm512_i32gather_epi64::<8>(iv, col.as_ptr());
        _mm512_storeu_si512(p.add(i) as *mut _, v);
        i += 8;
    }
    while i < sel.len() {
        *p.add(i) = *col.get_unchecked(*sel.get_unchecked(i) as usize);
        i += 1;
    }
}

/// `out[i] = col[sel[i]]` decoded from a bit-packed FOR column — the
/// conditional-aggregate reader of the fused-scan family: selected rows'
/// values are unpacked in registers straight into the dense vector the
/// aggregate/arithmetic primitives consume, so the flat column is never
/// touched (nor materialized).
pub fn gather_packed_i64(
    col: &dbep_storage::PackedInts,
    sel: &[u32],
    policy: SimdPolicy,
    out: &mut Vec<i64>,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd()
        && simd_level() >= SimdLevel::Avx512
        && (1..=dbep_storage::encoded::MAX_PACKED_WIDTH).contains(&col.width())
    {
        // SAFETY: ISA presence checked by simd_level(); width gate holds
        // the 8-byte-window decode invariant; sel indexes col.
        unsafe { gather_packed_i64_avx512(col, sel, out) };
        return;
    }
    let _ = policy;
    gather_packed_i64_scalar(col, sel, out);
}

/// Scalar twin of the AVX-512 packed-gather ladder.
fn gather_packed_i64_scalar(col: &dbep_storage::PackedInts, sel: &[u32], out: &mut Vec<i64>) {
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        debug_assert!((i as usize) < col.len());
        *o = col.get(i as usize);
    }
}

/// # Safety
/// Requires AVX-512F/DQ — reached only via the `Simd` dispatch arm, which
/// checks [`simd_level`]. `col.width()` must be in `1..=MAX_PACKED_WIDTH`
/// (the dispatcher checks): the +1 pad word of every `PackedInts` keeps
/// each 8-byte gather window in bounds. Every `sel` index must be in
/// bounds for `col`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn gather_packed_i64_avx512(col: &dbep_storage::PackedInts, sel: &[u32], out: &mut Vec<i64>) {
    use std::arch::x86_64::*;
    prep(out, sel.len());
    let p = out.as_mut_ptr();
    let bytes = col.words().as_ptr() as *const u8;
    let minv = _mm512_set1_epi64(col.min());
    let maskv = _mm512_set1_epi64(col.mask() as i64);
    let seven = _mm512_set1_epi64(7);
    let wv = _mm512_set1_epi64(col.width() as i64);
    let mut i = 0usize;
    while i + 8 <= sel.len() {
        let iv = _mm256_loadu_si256(sel.as_ptr().add(i) as *const _);
        let off = _mm512_mullo_epi64(_mm512_cvtepu32_epi64(iv), wv);
        let byte_off = _mm512_srli_epi64::<3>(off);
        let sh = _mm512_and_epi64(off, seven);
        let win = _mm512_i64gather_epi64::<1>(byte_off, bytes as *const _);
        let dec = _mm512_add_epi64(_mm512_and_epi64(_mm512_srlv_epi64(win, sh), maskv), minv);
        _mm512_storeu_si512(p.add(i) as *mut _, dec);
        i += 8;
    }
    while i < sel.len() {
        *p.add(i) = col.get(*sel.get_unchecked(i) as usize);
        i += 1;
    }
}

/// `out[i] = col[sel[i]]` for i32/date columns.
pub fn gather_i32(col: &[i32], sel: &[u32], out: &mut Vec<i32>) {
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        debug_assert!((i as usize) < col.len());
        // SAFETY: selection vectors index their source table.
        *o = unsafe { *col.get_unchecked(i as usize) };
    }
}

/// `out[i] = col[sel[i]]` for single-byte-code columns.
pub fn gather_u8(col: &[u8], sel: &[u32], out: &mut Vec<u8>) {
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        debug_assert!((i as usize) < col.len());
        // SAFETY: selection vectors index their source table.
        *o = unsafe { *col.get_unchecked(i as usize) };
    }
}

/// `out[i] = first byte of col[sel[i]]` (0 for empty strings).
///
/// Used to turn a low-cardinality string column whose filter pins the
/// domain to values with distinct leading bytes (Q4's priorities, Q12's
/// `IN ('MAIL','SHIP')`) into a dense byte vector the char-code
/// selection and grouping primitives can work on.
pub fn gather_str_byte0(col: &dbep_storage::StrColumn, sel: &[u32], out: &mut Vec<u8>) {
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        debug_assert!((i as usize) < col.len());
        *o = col.get_bytes(i as usize).first().copied().unwrap_or(0);
    }
}

/// `out[j]` = index into `vals` of the value equal to `col[sel[j]]`
/// (full-string compare; `u8::MAX` when no value matches).
///
/// The ordinal form of an IN-list whose members double as the group-by
/// domain (TPC-H Q12): downstream per-group selections run on the dense
/// ordinal vector with [`crate::sel::sel_eq_char_dense`]. Leading-byte
/// dispatch is *not* sufficient here — IN-list members may share a
/// prefix (`RAIL`/`REG AIR`).
pub fn gather_str_ordinal(col: &dbep_storage::StrColumn, sel: &[u32], vals: &[&[u8]], out: &mut Vec<u8>) {
    debug_assert!(vals.len() < u8::MAX as usize);
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        debug_assert!((i as usize) < col.len());
        let s = col.get_bytes(i as usize);
        *o = vals.iter().position(|v| *v == s).map_or(u8::MAX, |g| g as u8);
    }
}

/// Build-side gather: extract one field from each matched entry
/// (`entries` are addresses produced by the probe primitives over `ht`).
pub fn gather_build<T: Send + Sync, U>(
    ht: &JoinHt<T>,
    entries: &[u64],
    f: impl Fn(&T) -> U,
    out: &mut Vec<U>,
) {
    out.clear();
    out.reserve(entries.len());
    for &addr in entries {
        // SAFETY: probe primitives only emit addresses of this table.
        out.push(f(&unsafe { ht.entry_at(addr) }.row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_runtime::hash::murmur2;

    #[test]
    fn gathers_match_model_all_policies() {
        let col64: Vec<i64> = (0..3000).map(|i| i as i64 * 7 - 100).collect();
        let sel: Vec<u32> = (0..3000).filter(|i| i % 5 == 0).map(|i| i as u32).collect();
        let model: Vec<i64> = sel.iter().map(|&i| col64[i as usize]).collect();
        for policy in [SimdPolicy::Scalar, SimdPolicy::Simd] {
            let mut out = Vec::new();
            gather_i64(&col64, &sel, policy, &mut out);
            assert_eq!(out, model, "{policy:?}");
        }
        let col32: Vec<i32> = (0..100).map(|i| i * 2).collect();
        let sel32 = vec![0u32, 50, 99];
        let mut out32 = Vec::new();
        gather_i32(&col32, &sel32, &mut out32);
        assert_eq!(out32, vec![0, 100, 198]);
        let bytes = vec![b'a', b'b', b'c'];
        let mut outb = Vec::new();
        gather_u8(&bytes, &[2, 0], &mut outb);
        assert_eq!(outb, vec![b'c', b'a']);
    }

    #[test]
    fn gather_odd_lengths() {
        // Exercise the SIMD tail path.
        for n in [0usize, 1, 7, 8, 9, 17] {
            let col: Vec<i64> = (0..64).map(|i| i as i64).collect();
            let sel: Vec<u32> = (0..n as u32).collect();
            let mut out = Vec::new();
            gather_i64(&col, &sel, SimdPolicy::Simd, &mut out);
            assert_eq!(out, (0..n as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn str_byte0_gather() {
        let col: dbep_storage::StrColumn = ["MAIL", "SHIP", "", "1-URGENT"].into_iter().collect();
        let mut out = Vec::new();
        gather_str_byte0(&col, &[3, 0, 1, 2, 0], &mut out);
        assert_eq!(out, vec![b'1', b'M', b'S', 0, b'M']);
    }

    #[test]
    fn str_ordinal_gather_compares_full_strings() {
        // RAIL and REG AIR share a leading byte: ordinals must still
        // discriminate them.
        let col: dbep_storage::StrColumn = ["RAIL", "REG AIR", "MAIL", "RAIL"].into_iter().collect();
        let vals: [&[u8]; 2] = [b"RAIL", b"REG AIR"];
        let mut out = Vec::new();
        gather_str_ordinal(&col, &[0, 1, 2, 3], &vals, &mut out);
        assert_eq!(out, vec![0, 1, u8::MAX, 0]);
    }

    #[test]
    fn build_gather_extracts_fields() {
        let ht = JoinHt::build((0..10u64).map(|k| (murmur2(k), (k as i32, k as i64 * 100))));
        let entries: Vec<u64> = (0..10u64)
            .map(|k| {
                let mut it = ht.probe(murmur2(k));
                let e = it.next().expect("present");
                e as *const _ as u64
            })
            .collect();
        let mut payloads = Vec::new();
        gather_build(&ht, &entries, |row| row.1, &mut payloads);
        assert_eq!(payloads, (0..10i64).map(|k| k * 100).collect::<Vec<_>>());
    }
}
