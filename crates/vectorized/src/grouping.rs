//! Vectorized group-by machinery (§2.2).
//!
//! The Tectorwise aggregation finds each inbound tuple's group with the
//! same candidate-round technique as the hash join; tuples whose group is
//! missing are resolved against the thread-private pre-aggregation shard
//! one at a time (the simplification of the paper's equal-key partition
//! shuffle documented in DESIGN.md — identical results, the vector path
//! still handles every hit). Aggregate updates then run as one primitive
//! per aggregate column over (group, value) pairs.

use dbep_runtime::AggHt;

/// Scratch vectors for one group-by pipeline.
///
/// After [`find_groups`], `groups[i]` is the group index for scanned
/// tuple `group_sel[i]`, and `miss_sel` lists tuples without a group.
#[derive(Default)]
pub struct GroupBuffers {
    pub groups: Vec<u32>,
    pub group_sel: Vec<u32>,
    pub miss_sel: Vec<u32>,
    cand_node: Vec<u32>,
    cand_hash: Vec<u64>,
    cand_sel: Vec<u32>,
    next_node: Vec<u32>,
    next_hash: Vec<u64>,
    next_sel: Vec<u32>,
}

impl GroupBuffers {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resolve group indices for a vector of tuples.
///
/// `hashes[i]` is the group-key hash of tuple `sel[i]`; `key_eq` is the
/// composed per-key-column comparison (one type-specialized primitive
/// per column in Tectorwise terms).
pub fn find_groups<K: PartialEq, A>(
    ht: &AggHt<K, A>,
    hashes: &[u64],
    sel: &[u32],
    key_eq: impl Fn(&K, u32) -> bool,
    bufs: &mut GroupBuffers,
) {
    assert_eq!(hashes.len(), sel.len(), "find_groups inputs must align");
    bufs.groups.clear();
    bufs.group_sel.clear();
    bufs.miss_sel.clear();
    bufs.cand_node.clear();
    bufs.cand_hash.clear();
    bufs.cand_sel.clear();
    for (j, &h) in hashes.iter().enumerate() {
        let node = ht.head(h);
        if node == 0 {
            bufs.miss_sel.push(sel[j]);
        } else {
            bufs.cand_node.push(node);
            bufs.cand_hash.push(h);
            bufs.cand_sel.push(sel[j]);
        }
    }
    while !bufs.cand_node.is_empty() {
        bufs.next_node.clear();
        bufs.next_hash.clear();
        bufs.next_sel.clear();
        for j in 0..bufs.cand_node.len() {
            let node = bufs.cand_node[j];
            if ht.node_hash(node) == bufs.cand_hash[j] && key_eq(ht.key(node - 1), bufs.cand_sel[j]) {
                bufs.groups.push(node - 1);
                bufs.group_sel.push(bufs.cand_sel[j]);
                continue; // group keys are unique: first match wins
            }
            let next = ht.node_next(node);
            if next == 0 {
                bufs.miss_sel.push(bufs.cand_sel[j]);
            } else {
                bufs.next_node.push(next);
                bufs.next_hash.push(bufs.cand_hash[j]);
                bufs.next_sel.push(bufs.cand_sel[j]);
            }
        }
        std::mem::swap(&mut bufs.cand_node, &mut bufs.next_node);
        std::mem::swap(&mut bufs.cand_hash, &mut bufs.next_hash);
        std::mem::swap(&mut bufs.cand_sel, &mut bufs.next_sel);
    }
}

/// Aggregate-update primitive: fold `vals[i]` into group `groups[i]`.
/// One call per aggregate column, as constraint (i) demands.
pub fn agg_update_i64<K: PartialEq, A>(
    ht: &mut AggHt<K, A>,
    groups: &[u32],
    vals: &[i64],
    f: impl Fn(&mut A, i64),
) {
    assert_eq!(groups.len(), vals.len(), "agg inputs must align");
    for (j, &g) in groups.iter().enumerate() {
        f(ht.agg_mut(g), vals[j]);
    }
}

/// Count-style update (no value column).
pub fn agg_update_unit<K: PartialEq, A>(ht: &mut AggHt<K, A>, groups: &[u32], f: impl Fn(&mut A)) {
    for &g in groups {
        f(ht.agg_mut(g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_runtime::hash::murmur2;

    #[test]
    fn hits_and_misses_split_correctly() {
        let mut ht: AggHt<u64, i64> = AggHt::with_capacity(8);
        for k in 0..10u64 {
            ht.insert_new(murmur2(k), k, 0);
        }
        let keys: Vec<u64> = (5..15).collect();
        let hashes: Vec<u64> = keys.iter().map(|&k| murmur2(k)).collect();
        let sel: Vec<u32> = (0..10).collect();
        let mut bufs = GroupBuffers::new();
        find_groups(&ht, &hashes, &sel, |k, t| *k == keys[t as usize], &mut bufs);
        // keys 5..10 hit, keys 10..15 miss. Hits surface in candidate-round
        // order, so compare as sets.
        let mut hits = bufs.group_sel.clone();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 2, 3, 4]);
        let mut misses = bufs.miss_sel.clone();
        misses.sort_unstable();
        assert_eq!(misses, vec![5, 6, 7, 8, 9]);
        for (j, &g) in bufs.groups.iter().enumerate() {
            assert_eq!(*ht.key(g), keys[bufs.group_sel[j] as usize]);
        }
    }

    #[test]
    fn vectorized_aggregation_matches_scalar() {
        let mut ht: AggHt<u64, i64> = AggHt::with_capacity(16);
        let keys: Vec<u64> = (0..1000).map(|i| i % 13).collect();
        let vals: Vec<i64> = (0..1000).map(|i| i as i64).collect();
        // Insert all groups first.
        for k in 0..13u64 {
            ht.insert_new(murmur2(k), k, 0);
        }
        let hashes: Vec<u64> = keys.iter().map(|&k| murmur2(k)).collect();
        let sel: Vec<u32> = (0..1000).collect();
        let mut bufs = GroupBuffers::new();
        find_groups(&ht, &hashes, &sel, |k, t| *k == keys[t as usize], &mut bufs);
        assert!(bufs.miss_sel.is_empty());
        assert_eq!(bufs.groups.len(), 1000);
        // Gather the value per found tuple and update.
        let gathered: Vec<i64> = bufs.group_sel.iter().map(|&t| vals[t as usize]).collect();
        agg_update_i64(&mut ht, &bufs.groups, &gathered, |a, v| *a += v);
        let mut model = [0i64; 13];
        for i in 0..1000usize {
            model[i % 13] += i as i64;
        }
        for k in 0..13u64 {
            let idx = ht.find(murmur2(k), &k).expect("group");
            assert_eq!(*ht.agg_mut(idx), model[k as usize], "group {k}");
        }
    }

    #[test]
    fn empty_table_all_miss() {
        let ht: AggHt<u64, i64> = AggHt::with_capacity(4);
        let hashes = vec![murmur2(1), murmur2(2)];
        let sel = vec![10u32, 20];
        let mut bufs = GroupBuffers::new();
        find_groups(&ht, &hashes, &sel, |_, _| true, &mut bufs);
        assert!(bufs.groups.is_empty());
        assert_eq!(bufs.miss_sel, vec![10, 20]);
    }

    #[test]
    fn unit_updates_count() {
        let mut ht: AggHt<u64, i64> = AggHt::with_capacity(4);
        ht.insert_new(murmur2(1), 1, 0);
        agg_update_unit(&mut ht, &[0, 0, 0], |a| *a += 1);
        assert_eq!(*ht.agg_mut(0), 3);
    }
}
