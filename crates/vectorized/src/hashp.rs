//! Hash primitives (§2.2, §5.2).
//!
//! `hash_*` computes hashes for one key column into a dense vector;
//! `rehash_*` folds further key columns in (composite keys invoke one
//! primitive per column, exactly as Fig. 2b's `probeHash_` expression).
//! The hash function is a plan-level choice (§4.1): Murmur2 for
//! Tectorwise, CRC for Typer, switchable for the ablation.

use crate::SimdPolicy;
use dbep_runtime::hash::{crc64, murmur2, rehash_crc, rehash_murmur2, HashFn};
use dbep_runtime::{simd_level, SimdLevel};

#[inline(always)]
fn prep(out: &mut Vec<u64>, n: usize) {
    out.clear();
    out.resize(n, 0);
}

macro_rules! hash_gather {
    ($name:ident, $rename:ident, $ty:ty) => {
        /// Hash `col[sel[i]]` into `out[i]`.
        pub fn $name(col: &[$ty], sel: &[u32], hf: HashFn, out: &mut Vec<u64>) {
            prep(out, sel.len());
            match hf {
                HashFn::Murmur2 => {
                    for (o, &i) in out.iter_mut().zip(sel) {
                        debug_assert!((i as usize) < col.len());
                        // SAFETY: selection vectors index their source table.
                        *o = murmur2(unsafe { *col.get_unchecked(i as usize) } as u64);
                    }
                }
                HashFn::Crc => {
                    for (o, &i) in out.iter_mut().zip(sel) {
                        debug_assert!((i as usize) < col.len());
                        // SAFETY: as above.
                        *o = crc64(unsafe { *col.get_unchecked(i as usize) } as u64);
                    }
                }
            }
        }

        /// Fold `col[sel[i]]` into the existing hashes (composite keys).
        pub fn $rename(col: &[$ty], sel: &[u32], hf: HashFn, hashes: &mut [u64]) {
            assert_eq!(sel.len(), hashes.len(), "rehash inputs must align");
            match hf {
                HashFn::Murmur2 => {
                    for (h, &i) in hashes.iter_mut().zip(sel) {
                        // SAFETY: as above.
                        *h = rehash_murmur2(*h, unsafe { *col.get_unchecked(i as usize) } as u64);
                    }
                }
                HashFn::Crc => {
                    for (h, &i) in hashes.iter_mut().zip(sel) {
                        // SAFETY: as above.
                        *h = rehash_crc(*h, unsafe { *col.get_unchecked(i as usize) } as u64);
                    }
                }
            }
        }
    };
}
hash_gather!(hash_i32, rehash_i32, i32);
hash_gather!(hash_i64, rehash_i64, i64);
hash_gather!(hash_u8, rehash_u8, u8);

/// Hash a dense chunk slice (scan without preceding selection).
pub fn hash_i32_dense(col: &[i32], hf: HashFn, out: &mut Vec<u64>) {
    prep(out, col.len());
    match hf {
        HashFn::Murmur2 => {
            for (o, &v) in out.iter_mut().zip(col) {
                *o = murmur2(v as u64);
            }
        }
        HashFn::Crc => {
            for (o, &v) in out.iter_mut().zip(col) {
                *o = crc64(v as u64);
            }
        }
    }
}

// ---------------------------------------------------------------------
// SIMD hashing (Fig. 8a): 8-lane Murmur2 with AVX-512DQ 64-bit multiply.
// ---------------------------------------------------------------------

/// # Safety
/// Requires AVX-512F/DQ — reached only via the `Simd` dispatch arm,
/// which checks [`simd_level`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn murmur2_u64_avx512(keys: &[u64], out: &mut Vec<u64>) {
    use std::arch::x86_64::*;
    prep(out, keys.len());
    const M: i64 = 0xc6a4_a793_5bd1_e995u64 as i64;
    const SEED: u64 = 0x8445_d61a_4e77_4912;
    let m = _mm512_set1_epi64(M);
    let h0 = _mm512_set1_epi64((SEED ^ (0xc6a4_a793_5bd1_e995u64).wrapping_mul(8)) as i64);
    let p = out.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= keys.len() {
        let key = _mm512_loadu_si512(keys.as_ptr().add(i) as *const _);
        let mut k = _mm512_mullo_epi64(key, m);
        k = _mm512_xor_si512(k, _mm512_srli_epi64::<47>(k));
        k = _mm512_mullo_epi64(k, m);
        let mut h = _mm512_xor_si512(h0, k);
        h = _mm512_mullo_epi64(h, m);
        h = _mm512_xor_si512(h, _mm512_srli_epi64::<47>(h));
        h = _mm512_mullo_epi64(h, m);
        h = _mm512_xor_si512(h, _mm512_srli_epi64::<47>(h));
        _mm512_storeu_si512(p.add(i) as *mut _, h);
        i += 8;
    }
    while i < keys.len() {
        *p.add(i) = murmur2(*keys.get_unchecked(i));
        i += 1;
    }
}

/// Hash a dense vector of 64-bit keys with Murmur2 (micro-benchmark
/// kernel of Fig. 8a; falls back to scalar without AVX-512).
pub fn murmur2_u64_vec(keys: &[u64], policy: SimdPolicy, out: &mut Vec<u64>) {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        unsafe { murmur2_u64_avx512(keys, out) };
        return;
    }
    let _ = policy;
    murmur2_u64_scalar(keys, out);
}

/// Scalar twin of the 8-lane Murmur2 kernel.
fn murmur2_u64_scalar(keys: &[u64], out: &mut Vec<u64>) {
    prep(out, keys.len());
    for (o, &k) in out.iter_mut().zip(keys) {
        *o = murmur2(k);
    }
}

/// Fill `out` with `base..base + n` (positions vector for dense probes).
pub fn iota(base: u32, n: usize, out: &mut Vec<u32>) {
    out.clear();
    out.extend(base..base + n as u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_hash_matches_scalar_model() {
        let col: Vec<i32> = (0..500).map(|i| i * 3 - 250).collect();
        let sel: Vec<u32> = (0..500).step_by(7).map(|i| i as u32).collect();
        let mut out = Vec::new();
        hash_i32(&col, &sel, HashFn::Murmur2, &mut out);
        for (j, &i) in sel.iter().enumerate() {
            assert_eq!(out[j], murmur2(col[i as usize] as u64));
        }
        hash_i32(&col, &sel, HashFn::Crc, &mut out);
        for (j, &i) in sel.iter().enumerate() {
            assert_eq!(out[j], crc64(col[i as usize] as u64));
        }
    }

    #[test]
    fn rehash_composes_like_scalar() {
        let a: Vec<i32> = (0..100).collect();
        let b: Vec<i64> = (0..100).map(|i| i as i64 * 11).collect();
        let sel: Vec<u32> = (0..100).collect();
        let mut h = Vec::new();
        hash_i32(&a, &sel, HashFn::Murmur2, &mut h);
        rehash_i64(&b, &sel, HashFn::Murmur2, &mut h);
        for i in 0..100usize {
            assert_eq!(h[i], rehash_murmur2(murmur2(a[i] as u64), b[i] as u64));
        }
    }

    #[test]
    fn simd_murmur_matches_scalar() {
        let keys: Vec<u64> = (0..1001u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        murmur2_u64_vec(&keys, SimdPolicy::Scalar, &mut scalar);
        murmur2_u64_vec(&keys, SimdPolicy::Simd, &mut simd);
        assert_eq!(scalar, simd);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(scalar[i], murmur2(k));
        }
    }

    #[test]
    fn iota_fills_positions() {
        let mut out = Vec::new();
        iota(5, 4, &mut out);
        assert_eq!(out, vec![5, 6, 7, 8]);
        iota(0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn dense_hash_matches_gathered() {
        let col: Vec<i32> = (100..200).collect();
        let mut dense = Vec::new();
        hash_i32_dense(&col, HashFn::Crc, &mut dense);
        let sel: Vec<u32> = (0..100).collect();
        let mut gathered = Vec::new();
        hash_i32(&col, &sel, HashFn::Crc, &mut gathered);
        assert_eq!(dense, gathered);
    }
}
