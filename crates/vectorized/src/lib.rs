//! **Tectorwise** — the vectorized engine (§2.1–§2.2).
//!
//! Vectorized execution follows two hard constraints the paper derives:
//! every primitive (i) works on exactly one data type and (ii) processes
//! a whole vector of tuples per call. Operators are therefore decomposed
//! into *interpretation logic* (plan wiring, here: the query functions in
//! `dbep-queries`) and *primitives* (this crate) that do all the work and
//! materialize their results into vectors.
//!
//! Conventions shared by all primitives:
//!
//! * a **selection vector** is a `Vec<u32>` of *global row indices* into
//!   the scanned table (ascending within a chunk);
//! * the *first* selection primitive of a cascade runs over a dense chunk
//!   (`col[chunk]`, producing `base + i`); later primitives consume a
//!   selection vector and gather sparsely (§5.1's "sparse data loading");
//! * map/hash primitives produce *dense* outputs aligned index-for-index
//!   with their input selection vector;
//! * scalar selection uses predicated evaluation (`*res = i; res += cond`)
//!   exactly as §2.1 describes; SIMD variants use AVX-512 compress-store
//!   (or an AVX2 permutation-table fallback) as §5.1 describes.
//!
//! [`SimdPolicy`] chooses between the scalar baseline, hand-written SIMD
//! (§5) and the auto-vectorization variants (§5.3) at plan level.

pub mod adaptive;
pub mod chunk;
pub mod gather;
pub mod grouping;
pub mod hashp;
pub mod map;
pub mod probe;
pub mod sel;
pub mod stage;

pub use chunk::{chunks, ChunkSource, Chunks, DEFAULT_VECTOR_SIZE};
pub use probe::ProbeBuffers;

/// Which implementation of the hot primitives a plan uses (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Branch-free scalar baseline (compiled for baseline x86-64).
    Scalar,
    /// Hand-written intrinsics, dispatched on the detected ISA.
    Simd,
    /// Plain loops compiled with 512-bit features enabled, letting the
    /// compiler auto-vectorize (Fig. 10 substitution).
    Auto,
}

impl SimdPolicy {
    /// True if this policy may execute AVX-512 code paths.
    pub fn wants_simd(self) -> bool {
        !matches!(self, SimdPolicy::Scalar)
    }
}
