//! Projection ("map") primitives (§2.1).
//!
//! Expressions are split by arithmetic operator into one primitive per
//! operation; every primitive materializes a dense output vector aligned
//! with its inputs — the per-step load/store traffic that Table 1's
//! instruction counts attribute to Tectorwise.

use crate::SimdPolicy;
use dbep_runtime::{simd_level, SimdLevel};
use dbep_storage::StrColumn;

#[inline(always)]
fn prep<T: Copy + Default>(out: &mut Vec<T>, n: usize) {
    out.clear();
    out.resize(n, T::default());
}

/// `out[i] = c - a[i]` (e.g. `1 - l_discount` at scale 2).
pub fn map_rsub_const_i64(c: i64, a: &[i64], out: &mut Vec<i64>) {
    prep(out, a.len());
    for (o, &v) in out.iter_mut().zip(a) {
        *o = c - v;
    }
}

/// `out[i] = c + a[i]` (e.g. `1 + l_tax` at scale 2).
pub fn map_add_const_i64(c: i64, a: &[i64], out: &mut Vec<i64>) {
    prep(out, a.len());
    for (o, &v) in out.iter_mut().zip(a) {
        *o = c + v;
    }
}

/// `out[i] = a[i] * b[i]`.
pub fn map_mul_i64(a: &[i64], b: &[i64], out: &mut Vec<i64>) {
    assert_eq!(a.len(), b.len(), "map inputs must align");
    prep(out, a.len());
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// `out[i] = a[i] - b[i]`.
pub fn map_sub_i64(a: &[i64], b: &[i64], out: &mut Vec<i64>) {
    assert_eq!(a.len(), b.len(), "map inputs must align");
    prep(out, a.len());
    for i in 0..a.len() {
        out[i] = a[i] - b[i];
    }
}

/// `out[i] = extract(year from dates[i])` (Q9's `o_year`).
pub fn map_year(dates: &[i32], out: &mut Vec<i32>) {
    prep(out, dates.len());
    for (o, &d) in out.iter_mut().zip(dates) {
        *o = dbep_storage::types::year_of(d);
    }
}

// ---------------------------------------------------------------------
// String prefix-match flags (Q14's `p_type LIKE 'PROMO%'`).
// ---------------------------------------------------------------------

fn str_prefix_flags_scalar(col: &StrColumn, sel: &[u32], prefix: &[u8], out: &mut Vec<u8>) {
    prep(out, sel.len());
    for (o, &i) in out.iter_mut().zip(sel) {
        *o = col.get_bytes(i as usize).starts_with(prefix) as u8;
    }
}

/// # Safety
/// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
/// the scalar body with 512-bit registers); reached only via the
/// non-scalar dispatch arms, which check [`simd_level`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn str_prefix_flags_autovec(col: &StrColumn, sel: &[u32], prefix: &[u8], out: &mut Vec<u8>) {
    str_prefix_flags_scalar(col, sel, prefix, out)
}

/// `out[i] = col[sel[i]] starts_with prefix` as a 0/1 flag vector,
/// aligned with `sel`. Variable-length strings rule out hand-written
/// gathers, so the non-scalar policies take the Fig. 10 route: the same
/// loop compiled with 512-bit features enabled, whatever LLVM makes of
/// it (DESIGN.md substitution 2).
pub fn map_str_prefix_flags(
    col: &StrColumn,
    sel: &[u32],
    prefix: &[u8],
    policy: SimdPolicy,
    out: &mut Vec<u8>,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        unsafe { str_prefix_flags_autovec(col, sel, prefix, out) };
        return;
    }
    let _ = policy;
    str_prefix_flags_scalar(col, sel, prefix, out)
}

// ---------------------------------------------------------------------
// Conditional aggregation primitives (Q12's CASE counters, Q14's
// promo/total ratio): one branch-free pass per CASE arm.
// ---------------------------------------------------------------------

fn sum_i64_where_u8_scalar(vals: &[i64], flags: &[u8]) -> i64 {
    let mut s = 0i64;
    for (&v, &f) in vals.iter().zip(flags) {
        s = s.wrapping_add(v * (f != 0) as i64);
    }
    s
}

/// # Safety
/// Requires the AVX-512 features named in `target_feature` — reached
/// only via the `Simd` dispatch arm, which checks [`simd_level`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn sum_i64_where_u8_avx512(vals: &[i64], flags: &[u8]) -> i64 {
    use std::arch::x86_64::*;
    let mut acc = _mm512_setzero_si512();
    let mut i = 0usize;
    while i + 8 <= vals.len() {
        let v = _mm512_loadu_si512(vals.as_ptr().add(i) as *const _);
        let f = _mm_loadl_epi64(flags.as_ptr().add(i) as *const _);
        let m = _mm_cmpneq_epi8_mask(f, _mm_setzero_si128()) as __mmask8;
        acc = _mm512_mask_add_epi64(acc, m, acc, v);
        i += 8;
    }
    let mut s = _mm512_reduce_add_epi64(acc);
    while i < vals.len() {
        s = s.wrapping_add(*vals.get_unchecked(i) * (*flags.get_unchecked(i) != 0) as i64);
        i += 1;
    }
    s
}

/// Conditional sum: `Σ vals[i]` where `flags[i] != 0` (the CASE-WHEN arm
/// of Q14's promo revenue). Wrapping, like [`sum_i64`].
pub fn sum_i64_where_u8(vals: &[i64], flags: &[u8], policy: SimdPolicy) -> i64 {
    assert_eq!(vals.len(), flags.len(), "conditional sum inputs must align");
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { sum_i64_where_u8_avx512(vals, flags) };
    }
    let _ = policy;
    sum_i64_where_u8_scalar(vals, flags)
}

fn count_nonzero_u8_scalar(flags: &[u8]) -> i64 {
    let mut n = 0i64;
    for &f in flags {
        n += (f != 0) as i64;
    }
    n
}

/// # Safety
/// Requires the AVX-512 features named in `target_feature` — reached
/// only via the `Simd` dispatch arm, which checks [`simd_level`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn count_nonzero_u8_avx512(flags: &[u8]) -> i64 {
    use std::arch::x86_64::*;
    let mut n = 0i64;
    let mut i = 0usize;
    while i + 64 <= flags.len() {
        let v = _mm512_loadu_si512(flags.as_ptr().add(i) as *const _);
        let m = _mm512_cmpneq_epi8_mask(v, _mm512_setzero_si512());
        n += m.count_ones() as i64;
        i += 64;
    }
    while i < flags.len() {
        n += (*flags.get_unchecked(i) != 0) as i64;
        i += 1;
    }
    n
}

/// Conditional count: number of non-zero flags (Q12's
/// `sum(CASE WHEN … THEN 1 ELSE 0 END)` over a gathered flag vector).
pub fn count_nonzero_u8(flags: &[u8], policy: SimdPolicy) -> i64 {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { count_nonzero_u8_avx512(flags) };
    }
    let _ = policy;
    count_nonzero_u8_scalar(flags)
}

// ---------------------------------------------------------------------
// Sum primitives (aggregation without grouping, e.g. Q6 / SSB Q1.1).
// ---------------------------------------------------------------------

fn sum_i64_scalar(vals: &[i64]) -> i64 {
    let mut s = 0i64;
    for &v in vals {
        s = s.wrapping_add(v);
    }
    s
}

/// # Safety
/// Requires AVX-512F — reached only via the `Simd` dispatch arm,
/// which checks [`simd_level`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn sum_i64_avx512(vals: &[i64]) -> i64 {
    use std::arch::x86_64::*;
    let mut acc = _mm512_setzero_si512();
    let mut i = 0usize;
    while i + 8 <= vals.len() {
        let v = _mm512_loadu_si512(vals.as_ptr().add(i) as *const _);
        acc = _mm512_add_epi64(acc, v);
        i += 8;
    }
    let mut s = _mm512_reduce_add_epi64(acc);
    while i < vals.len() {
        s = s.wrapping_add(*vals.get_unchecked(i));
        i += 1;
    }
    s
}

/// Sum a dense i64 vector. Wrapping, like the paper's prototypes
/// (no overflow checks, §3.2).
pub fn sum_i64(vals: &[i64], policy: SimdPolicy) -> i64 {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { sum_i64_avx512(vals) };
    }
    let _ = policy;
    sum_i64_scalar(vals)
}

/// Widening sum into i128 (Q1's scale-6 charge column).
pub fn sum_i64_to_i128(vals: &[i64]) -> i128 {
    let mut s = 0i128;
    for &v in vals {
        s += v as i128;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_maps() {
        let a = vec![1i64, 2, 3];
        let b = vec![10i64, 20, 30];
        let mut out = Vec::new();
        map_rsub_const_i64(100, &a, &mut out);
        assert_eq!(out, vec![99, 98, 97]);
        map_add_const_i64(100, &a, &mut out);
        assert_eq!(out, vec![101, 102, 103]);
        map_mul_i64(&a, &b, &mut out);
        assert_eq!(out, vec![10, 40, 90]);
        map_sub_i64(&b, &a, &mut out);
        assert_eq!(out, vec![9, 18, 27]);
    }

    #[test]
    fn sums_agree_across_policies() {
        let vals: Vec<i64> = (0..1003).map(|i| (i * i) as i64 - 500).collect();
        let model: i64 = vals.iter().sum();
        assert_eq!(sum_i64(&vals, SimdPolicy::Scalar), model);
        assert_eq!(sum_i64(&vals, SimdPolicy::Simd), model);
        assert_eq!(sum_i64_to_i128(&vals), model as i128);
    }

    #[test]
    fn empty_inputs() {
        let mut out = Vec::new();
        map_mul_i64(&[], &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(sum_i64(&[], SimdPolicy::Simd), 0);
        assert_eq!(sum_i64_where_u8(&[], &[], SimdPolicy::Simd), 0);
        assert_eq!(count_nonzero_u8(&[], SimdPolicy::Simd), 0);
    }

    fn all_policies() -> [SimdPolicy; 3] {
        [SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto]
    }

    #[test]
    fn prefix_flags_match_model() {
        let col: StrColumn = [
            "PROMO PLATED TIN",
            "STANDARD BRUSHED COPPER",
            "PROMO ANODIZED STEEL",
            "PRO",
            "",
            "ECONOMY POLISHED BRASS",
        ]
        .into_iter()
        .collect();
        let sel: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 2, 0];
        let model: Vec<u8> = sel
            .iter()
            .map(|&i| col.get_bytes(i as usize).starts_with(b"PROMO") as u8)
            .collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            map_str_prefix_flags(&col, &sel, b"PROMO", policy, &mut out);
            assert_eq!(out, model, "{policy:?}");
        }
        // A prefix longer than the string never matches (no OOB read).
        let mut out = Vec::new();
        map_str_prefix_flags(&col, &[3], b"PROMO", SimdPolicy::Simd, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn conditional_sum_and_count_match_model() {
        let n = 1003usize;
        let vals: Vec<i64> = (0..n).map(|i| (i * i) as i64 - 300).collect();
        let flags: Vec<u8> = (0..n)
            .map(|i| ((i * 7) % 3 == 0) as u8 * ((i % 5) as u8 + 1))
            .collect();
        let model_sum: i64 = vals
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f != 0)
            .map(|(&v, _)| v)
            .sum();
        let model_count = flags.iter().filter(|&&f| f != 0).count() as i64;
        for policy in all_policies() {
            assert_eq!(sum_i64_where_u8(&vals, &flags, policy), model_sum, "{policy:?}");
            assert_eq!(count_nonzero_u8(&flags, policy), model_count, "{policy:?}");
        }
        // Tail sizes around the SIMD widths (8 for sums, 64 for counts).
        for k in [1usize, 7, 8, 9, 63, 64, 65] {
            for policy in all_policies() {
                assert_eq!(
                    sum_i64_where_u8(&vals[..k], &flags[..k], policy),
                    sum_i64_where_u8_scalar(&vals[..k], &flags[..k]),
                    "sum k={k} {policy:?}"
                );
                assert_eq!(
                    count_nonzero_u8(&flags[..k], policy),
                    count_nonzero_u8_scalar(&flags[..k]),
                    "count k={k} {policy:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_inputs_panic() {
        let mut out = Vec::new();
        map_mul_i64(&[1], &[1, 2], &mut out);
    }
}
