//! Projection ("map") primitives (§2.1).
//!
//! Expressions are split by arithmetic operator into one primitive per
//! operation; every primitive materializes a dense output vector aligned
//! with its inputs — the per-step load/store traffic that Table 1's
//! instruction counts attribute to Tectorwise.

use crate::SimdPolicy;
use dbep_runtime::{simd_level, SimdLevel};

#[inline(always)]
fn prep<T: Copy + Default>(out: &mut Vec<T>, n: usize) {
    out.clear();
    out.resize(n, T::default());
}

/// `out[i] = c - a[i]` (e.g. `1 - l_discount` at scale 2).
pub fn map_rsub_const_i64(c: i64, a: &[i64], out: &mut Vec<i64>) {
    prep(out, a.len());
    for (o, &v) in out.iter_mut().zip(a) {
        *o = c - v;
    }
}

/// `out[i] = c + a[i]` (e.g. `1 + l_tax` at scale 2).
pub fn map_add_const_i64(c: i64, a: &[i64], out: &mut Vec<i64>) {
    prep(out, a.len());
    for (o, &v) in out.iter_mut().zip(a) {
        *o = c + v;
    }
}

/// `out[i] = a[i] * b[i]`.
pub fn map_mul_i64(a: &[i64], b: &[i64], out: &mut Vec<i64>) {
    assert_eq!(a.len(), b.len(), "map inputs must align");
    prep(out, a.len());
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// `out[i] = a[i] - b[i]`.
pub fn map_sub_i64(a: &[i64], b: &[i64], out: &mut Vec<i64>) {
    assert_eq!(a.len(), b.len(), "map inputs must align");
    prep(out, a.len());
    for i in 0..a.len() {
        out[i] = a[i] - b[i];
    }
}

/// `out[i] = extract(year from dates[i])` (Q9's `o_year`).
pub fn map_year(dates: &[i32], out: &mut Vec<i32>) {
    prep(out, dates.len());
    for (o, &d) in out.iter_mut().zip(dates) {
        *o = dbep_storage::types::year_of(d);
    }
}

// ---------------------------------------------------------------------
// Sum primitives (aggregation without grouping, e.g. Q6 / SSB Q1.1).
// ---------------------------------------------------------------------

fn sum_i64_scalar(vals: &[i64]) -> i64 {
    let mut s = 0i64;
    for &v in vals {
        s = s.wrapping_add(v);
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn sum_i64_avx512(vals: &[i64]) -> i64 {
    use std::arch::x86_64::*;
    let mut acc = _mm512_setzero_si512();
    let mut i = 0usize;
    while i + 8 <= vals.len() {
        let v = _mm512_loadu_si512(vals.as_ptr().add(i) as *const _);
        acc = _mm512_add_epi64(acc, v);
        i += 8;
    }
    let mut s = _mm512_reduce_add_epi64(acc);
    while i < vals.len() {
        s = s.wrapping_add(*vals.get_unchecked(i));
        i += 1;
    }
    s
}

/// Sum a dense i64 vector. Wrapping, like the paper's prototypes
/// (no overflow checks, §3.2).
pub fn sum_i64(vals: &[i64], policy: SimdPolicy) -> i64 {
    #[cfg(target_arch = "x86_64")]
    if policy.wants_simd() && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { sum_i64_avx512(vals) };
    }
    let _ = policy;
    sum_i64_scalar(vals)
}

/// Widening sum into i128 (Q1's scale-6 charge column).
pub fn sum_i64_to_i128(vals: &[i64]) -> i128 {
    let mut s = 0i128;
    for &v in vals {
        s += v as i128;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_maps() {
        let a = vec![1i64, 2, 3];
        let b = vec![10i64, 20, 30];
        let mut out = Vec::new();
        map_rsub_const_i64(100, &a, &mut out);
        assert_eq!(out, vec![99, 98, 97]);
        map_add_const_i64(100, &a, &mut out);
        assert_eq!(out, vec![101, 102, 103]);
        map_mul_i64(&a, &b, &mut out);
        assert_eq!(out, vec![10, 40, 90]);
        map_sub_i64(&b, &a, &mut out);
        assert_eq!(out, vec![9, 18, 27]);
    }

    #[test]
    fn sums_agree_across_policies() {
        let vals: Vec<i64> = (0..1003).map(|i| (i * i) as i64 - 500).collect();
        let model: i64 = vals.iter().sum();
        assert_eq!(sum_i64(&vals, SimdPolicy::Scalar), model);
        assert_eq!(sum_i64(&vals, SimdPolicy::Simd), model);
        assert_eq!(sum_i64_to_i128(&vals), model as i128);
    }

    #[test]
    fn empty_inputs() {
        let mut out = Vec::new();
        map_mul_i64(&[], &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(sum_i64(&[], SimdPolicy::Simd), 0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_inputs_panic() {
        let mut out = Vec::new();
        map_mul_i64(&[1], &[1, 2], &mut out);
    }
}
