//! Vectorized hash-join probing (§2.2, Fig. 2b).
//!
//! The probe follows the paper's candidate loop exactly: `findCandidates`
//! resolves bucket heads for a vector of hashes, then rounds of
//! hash-compare / key-compare ("cmpKey") extract hits while candidates
//! with an overflow chain re-enter the next round, until the candidate
//! vector is empty. The SIMD variant (§5.2, Fig. 8c) gathers entry
//! hashes and next pointers with AVX-512 and compresses the surviving
//! candidates; key equality on hash-hits stays per-tuple, like the
//! type-specialized `cmpKey` primitives.

use crate::SimdPolicy;
use dbep_runtime::{simd_level, JoinHt, SimdLevel};

/// Reusable scratch vectors for one probe pipeline. `match_entry[i]` is
/// the entry address whose row joined with scanned tuple
/// `match_tuple[i]`.
#[derive(Default)]
pub struct ProbeBuffers {
    cand_addr: Vec<u64>,
    cand_hash: Vec<u64>,
    cand_tuple: Vec<u32>,
    next_addr: Vec<u64>,
    next_hash: Vec<u64>,
    next_tuple: Vec<u32>,
    pub match_entry: Vec<u64>,
    pub match_tuple: Vec<u32>,
}

impl ProbeBuffers {
    pub fn new() -> Self {
        Self::default()
    }

    fn start(&mut self) {
        self.cand_addr.clear();
        self.cand_hash.clear();
        self.cand_tuple.clear();
        self.match_entry.clear();
        self.match_tuple.clear();
    }
}

/// Probe `ht` with a vector of `hashes` aligned with scanned-tuple
/// indices `tuples`; `eq` is the composed `cmpKey` check. Emits every
/// (entry, tuple) match pair into the buffers and returns the match
/// count.
pub fn probe_join<T: Send + Sync>(
    ht: &JoinHt<T>,
    hashes: &[u64],
    tuples: &[u32],
    eq: impl Fn(&T, u32) -> bool,
    policy: SimdPolicy,
    bufs: &mut ProbeBuffers,
) -> usize {
    assert_eq!(hashes.len(), tuples.len(), "probe inputs must align");
    bufs.start();
    // findCandidates: bucket heads (tag filter applied inside).
    for (j, &h) in hashes.iter().enumerate() {
        let head = ht.chain_head(h);
        if head != 0 {
            bufs.cand_addr.push(head);
            bufs.cand_hash.push(h);
            bufs.cand_tuple.push(tuples[j]);
        }
    }
    // Candidate rounds.
    while !bufs.cand_addr.is_empty() {
        bufs.next_addr.clear();
        bufs.next_hash.clear();
        bufs.next_tuple.clear();
        #[cfg(target_arch = "x86_64")]
        let simd = policy.wants_simd() && simd_level() >= SimdLevel::Avx512;
        #[cfg(not(target_arch = "x86_64"))]
        let simd = false;
        let _ = policy;
        if simd {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: ISA checked; candidate addresses come from `ht`.
            unsafe {
                probe_round_avx512(ht, &eq, bufs)
            };
        } else {
            probe_round_scalar(ht, &eq, bufs);
        }
        std::mem::swap(&mut bufs.cand_addr, &mut bufs.next_addr);
        std::mem::swap(&mut bufs.cand_hash, &mut bufs.next_hash);
        std::mem::swap(&mut bufs.cand_tuple, &mut bufs.next_tuple);
    }
    bufs.match_entry.len()
}

fn probe_round_scalar<T: Send + Sync>(
    ht: &JoinHt<T>,
    eq: &impl Fn(&T, u32) -> bool,
    bufs: &mut ProbeBuffers,
) {
    for j in 0..bufs.cand_addr.len() {
        let addr = bufs.cand_addr[j];
        // SAFETY: candidate addresses originate from ht's chains.
        let e = unsafe { ht.entry_at(addr) };
        if e.hash == bufs.cand_hash[j] && eq(&e.row, bufs.cand_tuple[j]) {
            bufs.match_entry.push(addr);
            bufs.match_tuple.push(bufs.cand_tuple[j]);
        }
        let nxt = JoinHt::next_addr(e);
        if nxt != 0 {
            bufs.next_addr.push(nxt);
            bufs.next_hash.push(bufs.cand_hash[j]);
            bufs.next_tuple.push(bufs.cand_tuple[j]);
        }
    }
}

/// # Safety
/// Requires AVX-512F/VL — reached only via the `Simd` dispatch arm,
/// which checks [`simd_level`]. Candidate addresses in `bufs` must be
/// live entry addresses of `ht`'s chains (the gathers dereference them
/// as absolute pointers).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn probe_round_avx512<T: Send + Sync>(
    ht: &JoinHt<T>,
    eq: &impl Fn(&T, u32) -> bool,
    bufs: &mut ProbeBuffers,
) {
    use std::arch::x86_64::*;
    let n = bufs.cand_addr.len();
    // Entry layout (repr(C)): next word at +0, hash at +8.
    const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;
    bufs.next_addr.reserve(n);
    bufs.next_hash.reserve(n);
    bufs.next_tuple.reserve(n);
    let pa = bufs.next_addr.as_mut_ptr();
    let ph = bufs.next_hash.as_mut_ptr();
    let pt = bufs.next_tuple.as_mut_ptr();
    let mut out = 0usize;
    let mut j = 0usize;
    while j + 8 <= n {
        let vaddr = _mm512_loadu_si512(bufs.cand_addr.as_ptr().add(j) as *const _);
        let vhash_at = _mm512_add_epi64(vaddr, _mm512_set1_epi64(8));
        // Absolute-address gathers: base pointer 0, scale 1.
        let vent_hash = _mm512_i64gather_epi64::<1>(vhash_at, std::ptr::null());
        let vexp_hash = _mm512_loadu_si512(bufs.cand_hash.as_ptr().add(j) as *const _);
        let hit = _mm512_cmpeq_epi64_mask(vent_hash, vexp_hash);
        // Hash hits: run the per-tuple cmpKey primitive chain.
        let mut m = hit;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            let addr = bufs.cand_addr[j + b];
            let e = ht.entry_at(addr);
            if eq(&e.row, bufs.cand_tuple[j + b]) {
                bufs.match_entry.push(addr);
                bufs.match_tuple.push(bufs.cand_tuple[j + b]);
            }
            m &= m - 1;
        }
        // Advance all candidates along their chains.
        let vnext_tagged = _mm512_i64gather_epi64::<1>(vaddr, std::ptr::null());
        let vnext = _mm512_and_si512(vnext_tagged, _mm512_set1_epi64(PTR_MASK as i64));
        let alive = _mm512_cmpneq_epi64_mask(vnext, _mm512_setzero_si512());
        _mm512_mask_compressstoreu_epi64(pa.add(out) as *mut _, alive, vnext);
        _mm512_mask_compressstoreu_epi64(ph.add(out) as *mut _, alive, vexp_hash);
        let vtup = _mm256_loadu_si256(bufs.cand_tuple.as_ptr().add(j) as *const _);
        _mm256_mask_compressstoreu_epi32(pt.add(out) as *mut _, alive, vtup);
        out += alive.count_ones() as usize;
        j += 8;
    }
    bufs.next_addr.set_len(out);
    bufs.next_hash.set_len(out);
    bufs.next_tuple.set_len(out);
    // Scalar tail.
    while j < n {
        let addr = bufs.cand_addr[j];
        let e = ht.entry_at(addr);
        if e.hash == bufs.cand_hash[j] && eq(&e.row, bufs.cand_tuple[j]) {
            bufs.match_entry.push(addr);
            bufs.match_tuple.push(bufs.cand_tuple[j]);
        }
        let nxt = JoinHt::next_addr(e);
        if nxt != 0 {
            bufs.next_addr.push(nxt);
            bufs.next_hash.push(bufs.cand_hash[j]);
            bufs.next_tuple.push(bufs.cand_tuple[j]);
        }
        j += 1;
    }
}

/// Semi-join probe (§2.2 applied to EXISTS): probe `ht` with `hashes`
/// aligned with scanned-tuple indices `tuples` and emit each tuple **at
/// most once** — on its first confirmed match — into
/// `bufs.match_tuple`. Returns the number of qualifying tuples.
///
/// The candidate rounds mirror [`probe_join`], but a tuple whose key
/// matched leaves the candidate set instead of following its chain, so
/// duplicate build keys never duplicate probe output (the semi-join
/// contract Q4's `EXISTS` relies on). `bufs.match_entry` is left empty:
/// an existence probe has no build side to gather from.
pub fn probe_semijoin<T: Send + Sync>(
    ht: &JoinHt<T>,
    hashes: &[u64],
    tuples: &[u32],
    eq: impl Fn(&T, u32) -> bool,
    policy: SimdPolicy,
    bufs: &mut ProbeBuffers,
) -> usize {
    assert_eq!(hashes.len(), tuples.len(), "probe inputs must align");
    bufs.start();
    for (j, &h) in hashes.iter().enumerate() {
        let head = ht.chain_head(h);
        if head != 0 {
            bufs.cand_addr.push(head);
            bufs.cand_hash.push(h);
            bufs.cand_tuple.push(tuples[j]);
        }
    }
    while !bufs.cand_addr.is_empty() {
        bufs.next_addr.clear();
        bufs.next_hash.clear();
        bufs.next_tuple.clear();
        #[cfg(target_arch = "x86_64")]
        let simd = policy.wants_simd() && simd_level() >= SimdLevel::Avx512;
        #[cfg(not(target_arch = "x86_64"))]
        let simd = false;
        let _ = policy;
        if simd {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: ISA checked; candidate addresses come from `ht`.
            unsafe {
                semijoin_round_avx512(ht, &eq, bufs)
            };
        } else {
            semijoin_round_scalar(ht, &eq, bufs);
        }
        std::mem::swap(&mut bufs.cand_addr, &mut bufs.next_addr);
        std::mem::swap(&mut bufs.cand_hash, &mut bufs.next_hash);
        std::mem::swap(&mut bufs.cand_tuple, &mut bufs.next_tuple);
    }
    bufs.match_tuple.len()
}

fn semijoin_round_scalar<T: Send + Sync>(
    ht: &JoinHt<T>,
    eq: &impl Fn(&T, u32) -> bool,
    bufs: &mut ProbeBuffers,
) {
    for j in 0..bufs.cand_addr.len() {
        // SAFETY: candidate addresses originate from ht's chains.
        let e = unsafe { ht.entry_at(bufs.cand_addr[j]) };
        if e.hash == bufs.cand_hash[j] && eq(&e.row, bufs.cand_tuple[j]) {
            // First witness found: the tuple qualifies and retires.
            bufs.match_tuple.push(bufs.cand_tuple[j]);
            continue;
        }
        let nxt = JoinHt::next_addr(e);
        if nxt != 0 {
            bufs.next_addr.push(nxt);
            bufs.next_hash.push(bufs.cand_hash[j]);
            bufs.next_tuple.push(bufs.cand_tuple[j]);
        }
    }
}

/// # Safety
/// Requires AVX-512F/VL — reached only via the `Simd` dispatch arm,
/// which checks [`simd_level`]. Candidate addresses in `bufs` must be
/// live entry addresses of `ht`'s chains (the gathers dereference them
/// as absolute pointers).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn semijoin_round_avx512<T: Send + Sync>(
    ht: &JoinHt<T>,
    eq: &impl Fn(&T, u32) -> bool,
    bufs: &mut ProbeBuffers,
) {
    use std::arch::x86_64::*;
    let n = bufs.cand_addr.len();
    const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;
    bufs.next_addr.reserve(n);
    bufs.next_hash.reserve(n);
    bufs.next_tuple.reserve(n);
    let pa = bufs.next_addr.as_mut_ptr();
    let ph = bufs.next_hash.as_mut_ptr();
    let pt = bufs.next_tuple.as_mut_ptr();
    let mut out = 0usize;
    let mut j = 0usize;
    while j + 8 <= n {
        let vaddr = _mm512_loadu_si512(bufs.cand_addr.as_ptr().add(j) as *const _);
        let vhash_at = _mm512_add_epi64(vaddr, _mm512_set1_epi64(8));
        let vent_hash = _mm512_i64gather_epi64::<1>(vhash_at, std::ptr::null());
        let vexp_hash = _mm512_loadu_si512(bufs.cand_hash.as_ptr().add(j) as *const _);
        let hit = _mm512_cmpeq_epi64_mask(vent_hash, vexp_hash);
        // Hash hits run cmpKey per tuple; confirmed lanes retire.
        let mut confirmed: __mmask8 = 0;
        let mut m = hit;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            let e = ht.entry_at(bufs.cand_addr[j + b]);
            if eq(&e.row, bufs.cand_tuple[j + b]) {
                bufs.match_tuple.push(bufs.cand_tuple[j + b]);
                confirmed |= 1 << b;
            }
            m &= m - 1;
        }
        // Advance only the unconfirmed candidates along their chains.
        let vnext_tagged = _mm512_i64gather_epi64::<1>(vaddr, std::ptr::null());
        let vnext = _mm512_and_si512(vnext_tagged, _mm512_set1_epi64(PTR_MASK as i64));
        let alive = _mm512_cmpneq_epi64_mask(vnext, _mm512_setzero_si512()) & !confirmed;
        _mm512_mask_compressstoreu_epi64(pa.add(out) as *mut _, alive, vnext);
        _mm512_mask_compressstoreu_epi64(ph.add(out) as *mut _, alive, vexp_hash);
        let vtup = _mm256_loadu_si256(bufs.cand_tuple.as_ptr().add(j) as *const _);
        _mm256_mask_compressstoreu_epi32(pt.add(out) as *mut _, alive, vtup);
        out += alive.count_ones() as usize;
        j += 8;
    }
    bufs.next_addr.set_len(out);
    bufs.next_hash.set_len(out);
    bufs.next_tuple.set_len(out);
    // Scalar tail.
    while j < n {
        let e = ht.entry_at(bufs.cand_addr[j]);
        if e.hash == bufs.cand_hash[j] && eq(&e.row, bufs.cand_tuple[j]) {
            bufs.match_tuple.push(bufs.cand_tuple[j]);
            j += 1;
            continue;
        }
        let nxt = JoinHt::next_addr(e);
        if nxt != 0 {
            bufs.next_addr.push(nxt);
            bufs.next_hash.push(bufs.cand_hash[j]);
            bufs.next_tuple.push(bufs.cand_tuple[j]);
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_runtime::hash::murmur2;

    fn model_join(build: &[(i32, i64)], probe: &[i32]) -> Vec<(i64, u32)> {
        let mut out = Vec::new();
        for (t, &k) in probe.iter().enumerate() {
            for &(bk, payload) in build {
                if bk == k {
                    out.push((payload, t as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run(policy: SimdPolicy, build: &[(i32, i64)], probe: &[i32]) -> Vec<(i64, u32)> {
        let ht = JoinHt::build(build.iter().map(|&(k, v)| (murmur2(k as u64), (k, v))));
        let hashes: Vec<u64> = probe.iter().map(|&k| murmur2(k as u64)).collect();
        let tuples: Vec<u32> = (0..probe.len() as u32).collect();
        let mut bufs = ProbeBuffers::new();
        let n = probe_join(
            &ht,
            &hashes,
            &tuples,
            |row, t| row.0 == probe[t as usize],
            policy,
            &mut bufs,
        );
        assert_eq!(n, bufs.match_entry.len());
        let mut out: Vec<(i64, u32)> = bufs
            .match_entry
            .iter()
            .zip(&bufs.match_tuple)
            .map(|(&addr, &t)| {
                // SAFETY: addresses were emitted by probe_join over ht.
                (unsafe { ht.entry_at(addr) }.row.1, t)
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn probe_matches_model_scalar_and_simd() {
        let build: Vec<(i32, i64)> = (0..500).map(|k| (k, k as i64 * 3)).collect();
        let probe: Vec<i32> = (0..1000).map(|i| (i * 7) % 1500).collect();
        let model = model_join(&build, &probe);
        assert_eq!(run(SimdPolicy::Scalar, &build, &probe), model);
        assert_eq!(run(SimdPolicy::Simd, &build, &probe), model);
        assert!(!model.is_empty());
    }

    #[test]
    fn duplicates_on_both_sides() {
        let mut build = Vec::new();
        for k in 0..50 {
            build.push((k, k as i64));
            build.push((k, k as i64 + 1000));
        }
        let probe: Vec<i32> = (0..50).flat_map(|k| [k, k]).collect();
        let model = model_join(&build, &probe);
        assert_eq!(model.len(), 200);
        assert_eq!(run(SimdPolicy::Scalar, &build, &probe), model);
        assert_eq!(run(SimdPolicy::Simd, &build, &probe), model);
    }

    #[test]
    fn all_misses() {
        let build: Vec<(i32, i64)> = (0..100).map(|k| (k, k as i64)).collect();
        let probe: Vec<i32> = (1000..1100).collect();
        assert!(run(SimdPolicy::Scalar, &build, &probe).is_empty());
        assert!(run(SimdPolicy::Simd, &build, &probe).is_empty());
    }

    #[test]
    fn empty_probe_vector() {
        let build = vec![(1, 10i64)];
        let probe: Vec<i32> = Vec::new();
        assert!(run(SimdPolicy::Simd, &build, &probe).is_empty());
    }

    fn model_semijoin(build: &[(i32, i64)], probe: &[i32]) -> Vec<u32> {
        let keys: std::collections::HashSet<i32> = build.iter().map(|&(k, _)| k).collect();
        (0..probe.len() as u32)
            .filter(|&t| keys.contains(&probe[t as usize]))
            .collect()
    }

    fn run_semi(policy: SimdPolicy, build: &[(i32, i64)], probe: &[i32]) -> Vec<u32> {
        let ht = JoinHt::build(build.iter().map(|&(k, v)| (murmur2(k as u64), (k, v))));
        let hashes: Vec<u64> = probe.iter().map(|&k| murmur2(k as u64)).collect();
        let tuples: Vec<u32> = (0..probe.len() as u32).collect();
        let mut bufs = ProbeBuffers::new();
        let n = probe_semijoin(
            &ht,
            &hashes,
            &tuples,
            |row, t| row.0 == probe[t as usize],
            policy,
            &mut bufs,
        );
        assert_eq!(n, bufs.match_tuple.len());
        let mut out = bufs.match_tuple.clone();
        out.sort_unstable();
        out
    }

    #[test]
    fn semijoin_emits_each_tuple_at_most_once() {
        // Heavy duplication on the build side: a plain join would fan out,
        // the semi-join must not.
        let mut build = Vec::new();
        for k in 0..200 {
            for dup in 0..3 {
                build.push((k, dup as i64));
            }
        }
        let probe: Vec<i32> = (0..1000).map(|i| (i * 13) % 400).collect();
        let model = model_semijoin(&build, &probe);
        assert!(!model.is_empty() && model.len() < probe.len());
        assert_eq!(run_semi(SimdPolicy::Scalar, &build, &probe), model);
        assert_eq!(run_semi(SimdPolicy::Simd, &build, &probe), model);
        assert_eq!(run_semi(SimdPolicy::Auto, &build, &probe), model);
    }

    #[test]
    fn semijoin_edge_sizes_and_misses() {
        let build: Vec<(i32, i64)> = (0..64).map(|k| (k * 2, k as i64)).collect();
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 64] {
            let probe: Vec<i32> = (0..n as i32).collect();
            let model = model_semijoin(&build, &probe);
            for policy in [SimdPolicy::Scalar, SimdPolicy::Simd] {
                assert_eq!(run_semi(policy, &build, &probe), model, "n={n} {policy:?}");
            }
        }
        // All misses.
        let probe: Vec<i32> = (1000..1100).collect();
        assert!(run_semi(SimdPolicy::Simd, &build, &probe).is_empty());
    }

    #[test]
    fn probe_sizes_around_simd_width() {
        let build: Vec<(i32, i64)> = (0..64).map(|k| (k, k as i64)).collect();
        for n in [1usize, 7, 8, 9, 15, 16, 17] {
            let probe: Vec<i32> = (0..n as i32).collect();
            let model = model_join(&build, &probe);
            assert_eq!(run(SimdPolicy::Simd, &build, &probe), model, "n={n}");
        }
    }
}
