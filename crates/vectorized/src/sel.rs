//! Selection primitives (§2.1, §5.1).
//!
//! Each primitive evaluates one comparison on one column type and
//! produces a selection vector of global row indices:
//!
//! * `*_dense` — first selection of a cascade: scans `col[chunk]` and
//!   emits `base + i`;
//! * `*_sparse` — subsequent selections: consumes an input selection
//!   vector and gathers `col[sel[i]]` from non-contiguous locations
//!   (§5.1's "sparse data loading").
//!
//! Three implementations are provided per primitive (Fig. 6/7/10):
//! branch-free scalar (predicated `*res = i; res += cond`), hand-written
//! SIMD (AVX-512 compress-store; AVX2 permutation-table emulation), and
//! an auto-vectorization variant (plain loop compiled with 512-bit
//! features enabled).
//!
//! The `*_packed` / `*_for` / `*_code` families fuse decompression into
//! selection (ROADMAP item 3): they evaluate predicates directly over
//! bit-packed frame-of-reference columns ([`PackedInts`]) and dictionary
//! codes without materializing the flat array. Naming scheme:
//! `sel_<op>_<ty>_packed[_sparse]` for packed comparisons,
//! `sel_between_<ty>_for[_sparse]` for packed range predicates,
//! `sel_eq_code_{dense,sparse}` for dictionary-code equality. Fused
//! kernels decode in the 64-bit domain regardless of the source type and
//! compare against the widened constant; SIMD variants engage for packed
//! widths `1..=`[`MAX_PACKED_WIDTH`] (an 8-byte gather window decodes at
//! most 57 bits after the sub-byte shift), everything else takes the
//! scalar path with identical results.

use crate::SimdPolicy;
use dbep_runtime::{simd_level, SimdLevel};
use dbep_storage::encoded::MAX_PACKED_WIDTH;
use dbep_storage::{PackedInts, StrColumn};
use std::ops::Range;

/// Comparison codes matching `_MM_CMPINT_*` so scalar, SIMD and autovec
/// variants share one const-generic parameter.
pub const CMP_EQ: i32 = 0;
pub const CMP_LT: i32 = 1;
pub const CMP_LE: i32 = 2;
pub const CMP_GE: i32 = 5;
pub const CMP_GT: i32 = 6;

#[inline(always)]
fn cmp_op<const OP: i32, T: PartialOrd>(a: T, b: T) -> bool {
    match OP {
        CMP_EQ => a == b,
        CMP_LT => a < b,
        CMP_LE => a <= b,
        CMP_GE => a >= b,
        CMP_GT => a > b,
        _ => unreachable!("unknown comparison code"),
    }
}

/// Prepare `out` for up to `n` index writes, returning the write cursor.
///
/// The buffer is written through a raw pointer and the length set
/// afterwards, so no time is spent zero-filling (§2.1 footprint: the
/// materialization itself is the cost we measure, not bookkeeping).
#[inline(always)]
fn out_ptr(out: &mut Vec<u32>, n: usize) -> *mut u32 {
    out.clear();
    out.reserve(n);
    out.as_mut_ptr()
}

// ---------------------------------------------------------------------
// Scalar variants (branch-free predicated evaluation).
// ---------------------------------------------------------------------

macro_rules! scalar_dense {
    ($name:ident, $ty:ty) => {
        fn $name<const OP: i32>(col: &[$ty], c: $ty, base: u32, out: &mut Vec<u32>) -> usize {
            let p = out_ptr(out, col.len());
            let mut k = 0usize;
            for (i, &v) in col.iter().enumerate() {
                // SAFETY: k <= i < col.len() <= reserved capacity.
                unsafe { *p.add(k) = base + i as u32 };
                k += cmp_op::<OP, $ty>(v, c) as usize;
            }
            // SAFETY: the first k slots were initialized above.
            unsafe { out.set_len(k) };
            k
        }
    };
}
scalar_dense!(dense_i32_scalar, i32);
scalar_dense!(dense_i64_scalar, i64);

macro_rules! scalar_sparse {
    ($name:ident, $ty:ty) => {
        fn $name<const OP: i32>(col: &[$ty], c: $ty, in_sel: &[u32], out: &mut Vec<u32>) -> usize {
            let p = out_ptr(out, in_sel.len());
            let mut k = 0usize;
            for &i in in_sel {
                debug_assert!((i as usize) < col.len());
                // SAFETY: selection vectors only contain indices produced
                // by a prior primitive over this column's table.
                let v = unsafe { *col.get_unchecked(i as usize) };
                unsafe { *p.add(k) = i };
                k += cmp_op::<OP, $ty>(v, c) as usize;
            }
            // SAFETY: the first k slots were initialized above.
            unsafe { out.set_len(k) };
            k
        }
    };
}
scalar_sparse!(sparse_i32_scalar, i32);
scalar_sparse!(sparse_i64_scalar, i64);

fn dense_between_i64_scalar(col: &[i64], lo: i64, hi: i64, base: u32, out: &mut Vec<u32>) -> usize {
    let p = out_ptr(out, col.len());
    let mut k = 0usize;
    for (i, &v) in col.iter().enumerate() {
        // SAFETY: as in scalar_dense.
        unsafe { *p.add(k) = base + i as u32 };
        k += (v >= lo && v <= hi) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn sparse_between_i64_scalar(col: &[i64], lo: i64, hi: i64, in_sel: &[u32], out: &mut Vec<u32>) -> usize {
    let p = out_ptr(out, in_sel.len());
    let mut k = 0usize;
    for &i in in_sel {
        debug_assert!((i as usize) < col.len());
        // SAFETY: as in scalar_sparse.
        let v = unsafe { *col.get_unchecked(i as usize) };
        unsafe { *p.add(k) = i };
        k += (v >= lo && v <= hi) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn dense_cmp_i32_col_scalar<const OP: i32>(a: &[i32], b: &[i32], base: u32, out: &mut Vec<u32>) -> usize {
    assert_eq!(a.len(), b.len(), "column-column compare inputs must align");
    let p = out_ptr(out, a.len());
    let mut k = 0usize;
    for i in 0..a.len() {
        // SAFETY: k <= i < reserved capacity.
        unsafe { *p.add(k) = base + i as u32 };
        k += cmp_op::<OP, i32>(a[i], b[i]) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn sparse_cmp_i32_col_scalar<const OP: i32>(
    a: &[i32],
    b: &[i32],
    in_sel: &[u32],
    out: &mut Vec<u32>,
) -> usize {
    let p = out_ptr(out, in_sel.len());
    let mut k = 0usize;
    for &i in in_sel {
        debug_assert!((i as usize) < a.len() && (i as usize) < b.len());
        // SAFETY: selection vectors index their source table.
        let (va, vb) = unsafe { (*a.get_unchecked(i as usize), *b.get_unchecked(i as usize)) };
        unsafe { *p.add(k) = i };
        k += cmp_op::<OP, i32>(va, vb) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn packed_dense_scalar<const OP: i32>(
    col: &PackedInts,
    c: i64,
    chunk: Range<usize>,
    out: &mut Vec<u32>,
) -> usize {
    let p = out_ptr(out, chunk.len());
    let mut k = 0usize;
    for i in chunk {
        // SAFETY: k < chunk.len() <= reserved capacity.
        unsafe { *p.add(k) = i as u32 };
        k += cmp_op::<OP, i64>(col.get(i), c) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn packed_sparse_scalar<const OP: i32>(
    col: &PackedInts,
    c: i64,
    in_sel: &[u32],
    out: &mut Vec<u32>,
) -> usize {
    let p = out_ptr(out, in_sel.len());
    let mut k = 0usize;
    for &i in in_sel {
        debug_assert!((i as usize) < col.len());
        // SAFETY: k <= position < reserved capacity.
        unsafe { *p.add(k) = i };
        k += cmp_op::<OP, i64>(col.get(i as usize), c) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn packed_between_dense_scalar(
    col: &PackedInts,
    lo: i64,
    hi: i64,
    chunk: Range<usize>,
    out: &mut Vec<u32>,
) -> usize {
    let p = out_ptr(out, chunk.len());
    let mut k = 0usize;
    for i in chunk {
        let v = col.get(i);
        // SAFETY: as in packed_dense_scalar.
        unsafe { *p.add(k) = i as u32 };
        k += (v >= lo && v <= hi) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn packed_between_sparse_scalar(
    col: &PackedInts,
    lo: i64,
    hi: i64,
    in_sel: &[u32],
    out: &mut Vec<u32>,
) -> usize {
    let p = out_ptr(out, in_sel.len());
    let mut k = 0usize;
    for &i in in_sel {
        debug_assert!((i as usize) < col.len());
        let v = col.get(i as usize);
        // SAFETY: as in packed_sparse_scalar.
        unsafe { *p.add(k) = i };
        k += (v >= lo && v <= hi) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn dense_code_eq_scalar(codes: &[u8], code: u8, base: u32, out: &mut Vec<u32>) -> usize {
    let p = out_ptr(out, codes.len());
    let mut k = 0usize;
    for (i, &v) in codes.iter().enumerate() {
        // SAFETY: k <= i < reserved capacity.
        unsafe { *p.add(k) = base + i as u32 };
        k += (v == code) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

fn sparse_code_eq_scalar(codes: &[u8], code: u8, in_sel: &[u32], out: &mut Vec<u32>) -> usize {
    let p = out_ptr(out, in_sel.len());
    let mut k = 0usize;
    for &i in in_sel {
        debug_assert!((i as usize) < codes.len());
        // SAFETY: selection vectors index their source table.
        let v = unsafe { *codes.get_unchecked(i as usize) };
        unsafe { *p.add(k) = i };
        k += (v == code) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

// ---------------------------------------------------------------------
// AVX-512 variants (compress-store, gathers).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::*;
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dense_i32<const OP: i32>(col: &[i32], c: i32, base: u32, out: &mut Vec<u32>) -> usize {
        let n = col.len();
        let p = out_ptr(out, n);
        let cv = _mm512_set1_epi32(c);
        let mut idx = _mm512_add_epi32(
            _mm512_set1_epi32(base as i32),
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
        );
        let step = _mm512_set1_epi32(16);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 16 <= n {
            let v = _mm512_loadu_si512(col.as_ptr().add(i) as *const _);
            let m = _mm512_cmp_epi32_mask::<OP>(v, cv);
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m, idx);
            k += m.count_ones() as usize;
            idx = _mm512_add_epi32(idx, step);
            i += 16;
        }
        while i < n {
            *p.add(k) = base + i as u32;
            k += cmp_op::<OP, i32>(*col.get_unchecked(i), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sparse_i32<const OP: i32>(
        col: &[i32],
        c: i32,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let n = in_sel.len();
        let p = out_ptr(out, n);
        let cv = _mm512_set1_epi32(c);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 16 <= n {
            let iv = _mm512_loadu_si512(in_sel.as_ptr().add(i) as *const _);
            let v = _mm512_i32gather_epi32::<4>(iv, col.as_ptr());
            let m = _mm512_cmp_epi32_mask::<OP>(v, cv);
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m, iv);
            k += m.count_ones() as usize;
            i += 16;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            *p.add(k) = row;
            k += cmp_op::<OP, i32>(*col.get_unchecked(row as usize), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn sparse_i64<const OP: i32>(
        col: &[i64],
        c: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let n = in_sel.len();
        let p = out_ptr(out, n);
        let cv = _mm512_set1_epi64(c);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let iv = _mm256_loadu_si256(in_sel.as_ptr().add(i) as *const _);
            let v = _mm512_i32gather_epi64::<8>(iv, col.as_ptr());
            let m = _mm512_cmp_epi64_mask::<OP>(v, cv);
            _mm256_mask_compressstoreu_epi32(p.add(k) as *mut _, m, iv);
            k += m.count_ones() as usize;
            i += 8;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            *p.add(k) = row;
            k += cmp_op::<OP, i64>(*col.get_unchecked(row as usize), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn sparse_between_i64(
        col: &[i64],
        lo: i64,
        hi: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let n = in_sel.len();
        let p = out_ptr(out, n);
        let lov = _mm512_set1_epi64(lo);
        let hiv = _mm512_set1_epi64(hi);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let iv = _mm256_loadu_si256(in_sel.as_ptr().add(i) as *const _);
            let v = _mm512_i32gather_epi64::<8>(iv, col.as_ptr());
            let m = _mm512_cmp_epi64_mask::<{ CMP_GE }>(v, lov) & _mm512_cmp_epi64_mask::<{ CMP_LE }>(v, hiv);
            _mm256_mask_compressstoreu_epi32(p.add(k) as *mut _, m, iv);
            k += m.count_ones() as usize;
            i += 8;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            let v = *col.get_unchecked(row as usize);
            *p.add(k) = row;
            k += (v >= lo && v <= hi) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dense_cmp_i32_col<const OP: i32>(
        a: &[i32],
        b: &[i32],
        base: u32,
        out: &mut Vec<u32>,
    ) -> usize {
        assert_eq!(a.len(), b.len(), "column-column compare inputs must align");
        let n = a.len();
        let p = out_ptr(out, n);
        let mut idx = _mm512_add_epi32(
            _mm512_set1_epi32(base as i32),
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
        );
        let step = _mm512_set1_epi32(16);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 16 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            let m = _mm512_cmp_epi32_mask::<OP>(va, vb);
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m, idx);
            k += m.count_ones() as usize;
            idx = _mm512_add_epi32(idx, step);
            i += 16;
        }
        while i < n {
            *p.add(k) = base + i as u32;
            k += cmp_op::<OP, i32>(*a.get_unchecked(i), *b.get_unchecked(i)) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sparse_cmp_i32_col<const OP: i32>(
        a: &[i32],
        b: &[i32],
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let n = in_sel.len();
        let p = out_ptr(out, n);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 16 <= n {
            let iv = _mm512_loadu_si512(in_sel.as_ptr().add(i) as *const _);
            let va = _mm512_i32gather_epi32::<4>(iv, a.as_ptr());
            let vb = _mm512_i32gather_epi32::<4>(iv, b.as_ptr());
            let m = _mm512_cmp_epi32_mask::<OP>(va, vb);
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m, iv);
            k += m.count_ones() as usize;
            i += 16;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            *p.add(k) = row;
            k += cmp_op::<OP, i32>(*a.get_unchecked(row as usize), *b.get_unchecked(row as usize)) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dense_between_i64(col: &[i64], lo: i64, hi: i64, base: u32, out: &mut Vec<u32>) -> usize {
        let n = col.len();
        let p = out_ptr(out, n);
        let lov = _mm512_set1_epi64(lo);
        let hiv = _mm512_set1_epi64(hi);
        let mut idx = _mm256_add_epi32(
            _mm256_set1_epi32(base as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let step = _mm256_set1_epi32(8);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(col.as_ptr().add(i) as *const _);
            let m = _mm512_cmp_epi64_mask::<{ CMP_GE }>(v, lov) & _mm512_cmp_epi64_mask::<{ CMP_LE }>(v, hiv);
            // Compress 8 32-bit indices under an 8-bit mask: widen the
            // mask path through the 512-bit unit to stay on avx512f only.
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m as u16, _mm512_castsi256_si512(idx));
            k += m.count_ones() as usize;
            idx = _mm256_add_epi32(idx, step);
            i += 8;
        }
        while i < n {
            let v = *col.get_unchecked(i);
            *p.add(k) = base + i as u32;
            k += (v >= lo && v <= hi) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dense_i64<const OP: i32>(col: &[i64], c: i64, base: u32, out: &mut Vec<u32>) -> usize {
        let n = col.len();
        let p = out_ptr(out, n);
        let cv = _mm512_set1_epi64(c);
        let mut idx = _mm256_add_epi32(
            _mm256_set1_epi32(base as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let step = _mm256_set1_epi32(8);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(col.as_ptr().add(i) as *const _);
            let m = _mm512_cmp_epi64_mask::<OP>(v, cv);
            // Compress 8 32-bit indices under an 8-bit mask via the
            // 512-bit unit (avx512f only), as in dense_between_i64.
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m as u16, _mm512_castsi256_si512(idx));
            k += m.count_ones() as usize;
            idx = _mm256_add_epi32(idx, step);
            i += 8;
        }
        while i < n {
            *p.add(k) = base + i as u32;
            k += cmp_op::<OP, i64>(*col.get_unchecked(i), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    // -----------------------------------------------------------------
    // Fused decompress-and-select kernels over bit-packed FOR columns.
    //
    // Per lane: gather the 8-byte window holding the packed value
    // (byte offset `(row * width) >> 3`), shift by the sub-byte offset
    // (`(row * width) & 7`), mask to the width, add the frame-of-
    // reference minimum, and compare decoded i64s — the flat array is
    // never materialized. Valid for widths 1..=57; the +1 pad word of
    // every `PackedInts` allocation keeps the last gather in bounds.
    // -----------------------------------------------------------------

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// `col.width()` must be in `1..=MAX_PACKED_WIDTH` (callers check
    /// `packed_simd_ok`): the +1 pad word of every `PackedInts` keeps
    /// each 8-byte gather window in bounds.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn packed_dense<const OP: i32>(
        col: &PackedInts,
        c: i64,
        chunk: Range<usize>,
        out: &mut Vec<u32>,
    ) -> usize {
        let w = col.width() as usize;
        debug_assert!((1..=MAX_PACKED_WIDTH as usize).contains(&w));
        let bytes = col.words().as_ptr() as *const u8;
        let p = out_ptr(out, chunk.len());
        let cv = _mm512_set1_epi64(c);
        let minv = _mm512_set1_epi64(col.min());
        let maskv = _mm512_set1_epi64(col.mask() as i64);
        let seven = _mm512_set1_epi64(7);
        let s = chunk.start;
        let mut off = _mm512_setr_epi64(
            (s * w) as i64,
            ((s + 1) * w) as i64,
            ((s + 2) * w) as i64,
            ((s + 3) * w) as i64,
            ((s + 4) * w) as i64,
            ((s + 5) * w) as i64,
            ((s + 6) * w) as i64,
            ((s + 7) * w) as i64,
        );
        let offstep = _mm512_set1_epi64((8 * w) as i64);
        let mut idx = _mm256_add_epi32(
            _mm256_set1_epi32(s as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let idxstep = _mm256_set1_epi32(8);
        let mut k = 0usize;
        let mut i = s;
        while i + 8 <= chunk.end {
            let byte_off = _mm512_srli_epi64::<3>(off);
            let sh = _mm512_and_epi64(off, seven);
            let win = _mm512_i64gather_epi64::<1>(byte_off, bytes as *const _);
            let dec = _mm512_add_epi64(_mm512_and_epi64(_mm512_srlv_epi64(win, sh), maskv), minv);
            let m = _mm512_cmp_epi64_mask::<OP>(dec, cv);
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m as u16, _mm512_castsi256_si512(idx));
            k += m.count_ones() as usize;
            off = _mm512_add_epi64(off, offstep);
            idx = _mm256_add_epi32(idx, idxstep);
            i += 8;
        }
        while i < chunk.end {
            *p.add(k) = i as u32;
            k += cmp_op::<OP, i64>(col.get(i), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// `col.width()` must be in `1..=MAX_PACKED_WIDTH` (callers check
    /// `packed_simd_ok`): the +1 pad word of every `PackedInts` keeps
    /// each 8-byte gather window in bounds.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn packed_between_dense(
        col: &PackedInts,
        lo: i64,
        hi: i64,
        chunk: Range<usize>,
        out: &mut Vec<u32>,
    ) -> usize {
        let w = col.width() as usize;
        debug_assert!((1..=MAX_PACKED_WIDTH as usize).contains(&w));
        let bytes = col.words().as_ptr() as *const u8;
        let p = out_ptr(out, chunk.len());
        let lov = _mm512_set1_epi64(lo);
        let hiv = _mm512_set1_epi64(hi);
        let minv = _mm512_set1_epi64(col.min());
        let maskv = _mm512_set1_epi64(col.mask() as i64);
        let seven = _mm512_set1_epi64(7);
        let s = chunk.start;
        let mut off = _mm512_setr_epi64(
            (s * w) as i64,
            ((s + 1) * w) as i64,
            ((s + 2) * w) as i64,
            ((s + 3) * w) as i64,
            ((s + 4) * w) as i64,
            ((s + 5) * w) as i64,
            ((s + 6) * w) as i64,
            ((s + 7) * w) as i64,
        );
        let offstep = _mm512_set1_epi64((8 * w) as i64);
        let mut idx = _mm256_add_epi32(
            _mm256_set1_epi32(s as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let idxstep = _mm256_set1_epi32(8);
        let mut k = 0usize;
        let mut i = s;
        while i + 8 <= chunk.end {
            let byte_off = _mm512_srli_epi64::<3>(off);
            let sh = _mm512_and_epi64(off, seven);
            let win = _mm512_i64gather_epi64::<1>(byte_off, bytes as *const _);
            let dec = _mm512_add_epi64(_mm512_and_epi64(_mm512_srlv_epi64(win, sh), maskv), minv);
            let m =
                _mm512_cmp_epi64_mask::<{ CMP_GE }>(dec, lov) & _mm512_cmp_epi64_mask::<{ CMP_LE }>(dec, hiv);
            _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m as u16, _mm512_castsi256_si512(idx));
            k += m.count_ones() as usize;
            off = _mm512_add_epi64(off, offstep);
            idx = _mm256_add_epi32(idx, idxstep);
            i += 8;
        }
        while i < chunk.end {
            let v = col.get(i);
            *p.add(k) = i as u32;
            k += (v >= lo && v <= hi) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    /// `col.width()` must be in `1..=MAX_PACKED_WIDTH` (callers check
    /// `packed_simd_ok`): the +1 pad word of every `PackedInts` keeps
    /// each 8-byte gather window in bounds.
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    pub unsafe fn packed_sparse<const OP: i32>(
        col: &PackedInts,
        c: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let w = col.width() as usize;
        debug_assert!((1..=MAX_PACKED_WIDTH as usize).contains(&w));
        let bytes = col.words().as_ptr() as *const u8;
        let n = in_sel.len();
        let p = out_ptr(out, n);
        let cv = _mm512_set1_epi64(c);
        let minv = _mm512_set1_epi64(col.min());
        let maskv = _mm512_set1_epi64(col.mask() as i64);
        let seven = _mm512_set1_epi64(7);
        let wv = _mm512_set1_epi64(w as i64);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let iv = _mm256_loadu_si256(in_sel.as_ptr().add(i) as *const _);
            let off = _mm512_mullo_epi64(_mm512_cvtepu32_epi64(iv), wv);
            let byte_off = _mm512_srli_epi64::<3>(off);
            let sh = _mm512_and_epi64(off, seven);
            let win = _mm512_i64gather_epi64::<1>(byte_off, bytes as *const _);
            let dec = _mm512_add_epi64(_mm512_and_epi64(_mm512_srlv_epi64(win, sh), maskv), minv);
            let m = _mm512_cmp_epi64_mask::<OP>(dec, cv);
            _mm256_mask_compressstoreu_epi32(p.add(k) as *mut _, m, iv);
            k += m.count_ones() as usize;
            i += 8;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            *p.add(k) = row;
            k += cmp_op::<OP, i64>(col.get(row as usize), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    /// `col.width()` must be in `1..=MAX_PACKED_WIDTH` (callers check
    /// `packed_simd_ok`): the +1 pad word of every `PackedInts` keeps
    /// each 8-byte gather window in bounds.
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    pub unsafe fn packed_between_sparse(
        col: &PackedInts,
        lo: i64,
        hi: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let w = col.width() as usize;
        debug_assert!((1..=MAX_PACKED_WIDTH as usize).contains(&w));
        let bytes = col.words().as_ptr() as *const u8;
        let n = in_sel.len();
        let p = out_ptr(out, n);
        let lov = _mm512_set1_epi64(lo);
        let hiv = _mm512_set1_epi64(hi);
        let minv = _mm512_set1_epi64(col.min());
        let maskv = _mm512_set1_epi64(col.mask() as i64);
        let seven = _mm512_set1_epi64(7);
        let wv = _mm512_set1_epi64(w as i64);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let iv = _mm256_loadu_si256(in_sel.as_ptr().add(i) as *const _);
            let off = _mm512_mullo_epi64(_mm512_cvtepu32_epi64(iv), wv);
            let byte_off = _mm512_srli_epi64::<3>(off);
            let sh = _mm512_and_epi64(off, seven);
            let win = _mm512_i64gather_epi64::<1>(byte_off, bytes as *const _);
            let dec = _mm512_add_epi64(_mm512_and_epi64(_mm512_srlv_epi64(win, sh), maskv), minv);
            let m =
                _mm512_cmp_epi64_mask::<{ CMP_GE }>(dec, lov) & _mm512_cmp_epi64_mask::<{ CMP_LE }>(dec, hiv);
            _mm256_mask_compressstoreu_epi32(p.add(k) as *mut _, m, iv);
            k += m.count_ones() as usize;
            i += 8;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            let v = col.get(row as usize);
            *p.add(k) = row;
            k += (v >= lo && v <= hi) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// Dictionary-code equality over a dense code chunk: 64 codes per
    /// 512-bit compare, indices compressed in four 16-lane groups.
    ///
    /// # Safety
    /// Requires the AVX-512 features named in `target_feature` — reached
    /// only via the `Simd` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn dense_code_eq(codes: &[u8], code: u8, base: u32, out: &mut Vec<u32>) -> usize {
        let n = codes.len();
        let p = out_ptr(out, n);
        let cv = _mm512_set1_epi8(code as i8);
        let lanes = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 64 <= n {
            let v = _mm512_loadu_si512(codes.as_ptr().add(i) as *const _);
            let m = _mm512_cmpeq_epi8_mask(v, cv);
            for g in 0..4usize {
                let m16 = ((m >> (16 * g)) & 0xffff) as u16;
                let idx = _mm512_add_epi32(_mm512_set1_epi32((base as usize + i + 16 * g) as i32), lanes);
                _mm512_mask_compressstoreu_epi32(p.add(k) as *mut _, m16, idx);
                k += m16.count_ones() as usize;
            }
            i += 64;
        }
        while i < n {
            *p.add(k) = base + i as u32;
            k += (*codes.get_unchecked(i) == code) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }
}

// ---------------------------------------------------------------------
// AVX2 variants (permutation-table compress, as in the paper's fn. 6).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// 256-entry table: for each 8-bit mask, the lane permutation that
    /// packs selected lanes to the front (the AVX2 "left-packing" trick).
    fn lut() -> &'static [[i32; 8]; 256] {
        use std::sync::OnceLock;
        static LUT: OnceLock<Box<[[i32; 8]; 256]>> = OnceLock::new();
        LUT.get_or_init(|| {
            let mut t = Box::new([[0i32; 8]; 256]);
            for (mask, row) in t.iter_mut().enumerate() {
                let mut k = 0;
                for lane in 0..8 {
                    if mask & (1 << lane) != 0 {
                        row[k] = lane;
                        k += 1;
                    }
                }
            }
            t
        })
    }

    /// # Safety
    /// Requires AVX2 — reached only via the `Simd` dispatch arms, which
    /// check [`simd_level`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn dense_i32<const OP: i32>(col: &[i32], c: i32, base: u32, out: &mut Vec<u32>) -> usize {
        let n = col.len();
        let p = out_ptr(out, n + 8); // +8: full-lane stores may overhang
        let lut = lut();
        let cv = _mm256_set1_epi32(c);
        let mut idx = _mm256_add_epi32(
            _mm256_set1_epi32(base as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let step = _mm256_set1_epi32(8);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm256_loadu_si256(col.as_ptr().add(i) as *const _);
            // AVX2 has no unsigned/ordered compare family; build the mask
            // from gt/eq.
            let m = match OP {
                CMP_EQ => _mm256_cmpeq_epi32(v, cv),
                CMP_LT => _mm256_cmpgt_epi32(cv, v),
                CMP_LE => _mm256_or_si256(_mm256_cmpgt_epi32(cv, v), _mm256_cmpeq_epi32(v, cv)),
                CMP_GE => _mm256_or_si256(_mm256_cmpgt_epi32(v, cv), _mm256_cmpeq_epi32(v, cv)),
                CMP_GT => _mm256_cmpgt_epi32(v, cv),
                _ => unreachable!(),
            };
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(m)) as usize;
            let perm = _mm256_loadu_si256(lut[mask].as_ptr() as *const _);
            let packed = _mm256_permutevar8x32_epi32(idx, perm);
            _mm256_storeu_si256(p.add(k) as *mut _, packed);
            k += mask.count_ones() as usize;
            idx = _mm256_add_epi32(idx, step);
            i += 8;
        }
        while i < n {
            *p.add(k) = base + i as u32;
            k += cmp_op::<OP, i32>(*col.get_unchecked(i), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }

    /// # Safety
    /// Requires AVX2 — reached only via the `Simd` dispatch arms, which
    /// check [`simd_level`].
    /// Every `in_sel` index must be in bounds for the column: selection
    /// vectors are produced by prior primitives over the same table.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sparse_i32<const OP: i32>(
        col: &[i32],
        c: i32,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        let n = in_sel.len();
        let p = out_ptr(out, n + 8);
        let lut = lut();
        let cv = _mm256_set1_epi32(c);
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let iv = _mm256_loadu_si256(in_sel.as_ptr().add(i) as *const _);
            let v = _mm256_i32gather_epi32::<4>(col.as_ptr(), iv);
            let m = match OP {
                CMP_EQ => _mm256_cmpeq_epi32(v, cv),
                CMP_LT => _mm256_cmpgt_epi32(cv, v),
                CMP_LE => _mm256_or_si256(_mm256_cmpgt_epi32(cv, v), _mm256_cmpeq_epi32(v, cv)),
                CMP_GE => _mm256_or_si256(_mm256_cmpgt_epi32(v, cv), _mm256_cmpeq_epi32(v, cv)),
                CMP_GT => _mm256_cmpgt_epi32(v, cv),
                _ => unreachable!(),
            };
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(m)) as usize;
            let perm = _mm256_loadu_si256(lut[mask].as_ptr() as *const _);
            let packed = _mm256_permutevar8x32_epi32(iv, perm);
            _mm256_storeu_si256(p.add(k) as *mut _, packed);
            k += mask.count_ones() as usize;
            i += 8;
        }
        while i < n {
            let row = *in_sel.get_unchecked(i);
            *p.add(k) = row;
            k += cmp_op::<OP, i32>(*col.get_unchecked(row as usize), c) as usize;
            i += 1;
        }
        out.set_len(k);
        k
    }
}

// ---------------------------------------------------------------------
// Auto-vectorization variants (Fig. 10 substitution): the *scalar* loop
// compiled with 512-bit features enabled — whatever LLVM makes of it is
// the experiment's result.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod autovec {
    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn dense_i32<const OP: i32>(col: &[i32], c: i32, base: u32, out: &mut Vec<u32>) -> usize {
        super::dense_i32_scalar::<OP>(col, c, base, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn sparse_i32<const OP: i32>(
        col: &[i32],
        c: i32,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        super::sparse_i32_scalar::<OP>(col, c, in_sel, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn sparse_i64<const OP: i32>(
        col: &[i64],
        c: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        super::sparse_i64_scalar::<OP>(col, c, in_sel, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn dense_cmp_i32_col<const OP: i32>(
        a: &[i32],
        b: &[i32],
        base: u32,
        out: &mut Vec<u32>,
    ) -> usize {
        super::dense_cmp_i32_col_scalar::<OP>(a, b, base, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn sparse_cmp_i32_col<const OP: i32>(
        a: &[i32],
        b: &[i32],
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        super::sparse_cmp_i32_col_scalar::<OP>(a, b, in_sel, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn dense_i64<const OP: i32>(col: &[i64], c: i64, base: u32, out: &mut Vec<u32>) -> usize {
        super::dense_i64_scalar::<OP>(col, c, base, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn packed_dense<const OP: i32>(
        col: &super::PackedInts,
        c: i64,
        chunk: super::Range<usize>,
        out: &mut Vec<u32>,
    ) -> usize {
        super::packed_dense_scalar::<OP>(col, c, chunk, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn packed_sparse<const OP: i32>(
        col: &super::PackedInts,
        c: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        super::packed_sparse_scalar::<OP>(col, c, in_sel, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn packed_between_dense(
        col: &super::PackedInts,
        lo: i64,
        hi: i64,
        chunk: super::Range<usize>,
        out: &mut Vec<u32>,
    ) -> usize {
        super::packed_between_dense_scalar(col, lo, hi, chunk, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn packed_between_sparse(
        col: &super::PackedInts,
        lo: i64,
        hi: i64,
        in_sel: &[u32],
        out: &mut Vec<u32>,
    ) -> usize {
        super::packed_between_sparse_scalar(col, lo, hi, in_sel, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn dense_code_eq(codes: &[u8], code: u8, base: u32, out: &mut Vec<u32>) -> usize {
        super::dense_code_eq_scalar(codes, code, base, out)
    }

    /// # Safety
    /// Requires AVX-512 (the attribute exists so LLVM may auto-vectorize
    /// the scalar body with 512-bit registers); reached only via the
    /// `Auto` dispatch arms, which check [`simd_level`].
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn sparse_code_eq(codes: &[u8], code: u8, in_sel: &[u32], out: &mut Vec<u32>) -> usize {
        super::sparse_code_eq_scalar(codes, code, in_sel, out)
    }
}

// ---------------------------------------------------------------------
// Public dispatching primitives.
// ---------------------------------------------------------------------

macro_rules! dispatch_dense_i32 {
    ($name:ident, $op:expr) => {
        /// Dense selection over a chunk slice; emits `base + i`.
        pub fn $name(col: &[i32], c: i32, base: u32, out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
            #[cfg(target_arch = "x86_64")]
            match (policy, simd_level()) {
                (SimdPolicy::Simd, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx512::dense_i32::<{ $op }>(col, c, base, out) };
                }
                (SimdPolicy::Simd, SimdLevel::Avx2) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx2::dense_i32::<{ $op }>(col, c, base, out) };
                }
                (SimdPolicy::Auto, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { autovec::dense_i32::<{ $op }>(col, c, base, out) };
                }
                _ => {}
            }
            dense_i32_scalar::<{ $op }>(col, c, base, out)
        }
    };
}
dispatch_dense_i32!(sel_lt_i32_dense, CMP_LT);
dispatch_dense_i32!(sel_le_i32_dense, CMP_LE);
dispatch_dense_i32!(sel_ge_i32_dense, CMP_GE);
dispatch_dense_i32!(sel_gt_i32_dense, CMP_GT);
dispatch_dense_i32!(sel_eq_i32_dense, CMP_EQ);

macro_rules! dispatch_sparse_i32 {
    ($name:ident, $op:expr) => {
        /// Sparse selection refining an input selection vector.
        pub fn $name(col: &[i32], c: i32, in_sel: &[u32], out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
            #[cfg(target_arch = "x86_64")]
            match (policy, simd_level()) {
                (SimdPolicy::Simd, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx512::sparse_i32::<{ $op }>(col, c, in_sel, out) };
                }
                (SimdPolicy::Simd, SimdLevel::Avx2) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx2::sparse_i32::<{ $op }>(col, c, in_sel, out) };
                }
                (SimdPolicy::Auto, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { autovec::sparse_i32::<{ $op }>(col, c, in_sel, out) };
                }
                _ => {}
            }
            sparse_i32_scalar::<{ $op }>(col, c, in_sel, out)
        }
    };
}
dispatch_sparse_i32!(sel_lt_i32_sparse, CMP_LT);
dispatch_sparse_i32!(sel_le_i32_sparse, CMP_LE);
dispatch_sparse_i32!(sel_ge_i32_sparse, CMP_GE);
dispatch_sparse_i32!(sel_gt_i32_sparse, CMP_GT);
dispatch_sparse_i32!(sel_eq_i32_sparse, CMP_EQ);

macro_rules! dispatch_sparse_i64 {
    ($name:ident, $op:expr) => {
        /// Sparse selection on a 64-bit column.
        pub fn $name(col: &[i64], c: i64, in_sel: &[u32], out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
            #[cfg(target_arch = "x86_64")]
            match (policy, simd_level()) {
                (SimdPolicy::Simd, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx512::sparse_i64::<{ $op }>(col, c, in_sel, out) };
                }
                (SimdPolicy::Auto, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { autovec::sparse_i64::<{ $op }>(col, c, in_sel, out) };
                }
                _ => {}
            }
            sparse_i64_scalar::<{ $op }>(col, c, in_sel, out)
        }
    };
}
dispatch_sparse_i64!(sel_lt_i64_sparse, CMP_LT);
dispatch_sparse_i64!(sel_ge_i64_sparse, CMP_GE);
dispatch_sparse_i64!(sel_le_i64_sparse, CMP_LE);

macro_rules! dispatch_dense_i64 {
    ($name:ident, $op:expr) => {
        /// Dense selection on a 64-bit column; emits `base + i`.
        pub fn $name(col: &[i64], c: i64, base: u32, out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
            #[cfg(target_arch = "x86_64")]
            match (policy, simd_level()) {
                (SimdPolicy::Simd, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx512::dense_i64::<{ $op }>(col, c, base, out) };
                }
                (SimdPolicy::Auto, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { autovec::dense_i64::<{ $op }>(col, c, base, out) };
                }
                _ => {}
            }
            dense_i64_scalar::<{ $op }>(col, c, base, out)
        }
    };
}
dispatch_dense_i64!(sel_lt_i64_dense, CMP_LT);

// ---------------------------------------------------------------------
// Fused decompress-and-select dispatchers (bit-packed FOR columns and
// dictionary codes). SIMD variants engage for packed widths
// 1..=MAX_PACKED_WIDTH; all-equal (width 0) and raw-fallback (width 64)
// columns take the scalar path with identical results.
// ---------------------------------------------------------------------

#[inline]
fn packed_simd_ok(col: &PackedInts) -> bool {
    (1..=MAX_PACKED_WIDTH).contains(&col.width())
}

macro_rules! dispatch_packed_dense {
    ($name:ident, $ty:ty, $op:expr) => {
        /// Fused decompress-and-select over the packed column rows in
        /// `chunk`; emits global row indices without materializing the
        /// flat array.
        pub fn $name(
            col: &PackedInts,
            c: $ty,
            chunk: Range<usize>,
            out: &mut Vec<u32>,
            policy: SimdPolicy,
        ) -> usize {
            let c = c as i64;
            #[cfg(target_arch = "x86_64")]
            if packed_simd_ok(col) {
                match (policy, simd_level()) {
                    (SimdPolicy::Simd, SimdLevel::Avx512) => {
                        // SAFETY: ISA presence checked by simd_level();
                        // width gate checked by packed_simd_ok.
                        return unsafe { avx512::packed_dense::<{ $op }>(col, c, chunk, out) };
                    }
                    (SimdPolicy::Auto, SimdLevel::Avx512) => {
                        // SAFETY: ISA presence checked by simd_level().
                        return unsafe { autovec::packed_dense::<{ $op }>(col, c, chunk, out) };
                    }
                    _ => {}
                }
            }
            packed_dense_scalar::<{ $op }>(col, c, chunk, out)
        }
    };
}
dispatch_packed_dense!(sel_lt_i32_packed, i32, CMP_LT);
dispatch_packed_dense!(sel_le_i32_packed, i32, CMP_LE);
dispatch_packed_dense!(sel_ge_i32_packed, i32, CMP_GE);
dispatch_packed_dense!(sel_gt_i32_packed, i32, CMP_GT);
dispatch_packed_dense!(sel_eq_i32_packed, i32, CMP_EQ);
dispatch_packed_dense!(sel_lt_i64_packed, i64, CMP_LT);
dispatch_packed_dense!(sel_le_i64_packed, i64, CMP_LE);
dispatch_packed_dense!(sel_ge_i64_packed, i64, CMP_GE);
dispatch_packed_dense!(sel_gt_i64_packed, i64, CMP_GT);
dispatch_packed_dense!(sel_eq_i64_packed, i64, CMP_EQ);

macro_rules! dispatch_packed_sparse {
    ($name:ident, $ty:ty, $op:expr) => {
        /// Fused decompress-and-select refining an input selection
        /// vector over a packed column.
        pub fn $name(
            col: &PackedInts,
            c: $ty,
            in_sel: &[u32],
            out: &mut Vec<u32>,
            policy: SimdPolicy,
        ) -> usize {
            let c = c as i64;
            #[cfg(target_arch = "x86_64")]
            if packed_simd_ok(col) {
                match (policy, simd_level()) {
                    (SimdPolicy::Simd, SimdLevel::Avx512) => {
                        // SAFETY: as in dispatch_packed_dense.
                        return unsafe { avx512::packed_sparse::<{ $op }>(col, c, in_sel, out) };
                    }
                    (SimdPolicy::Auto, SimdLevel::Avx512) => {
                        // SAFETY: ISA presence checked by simd_level().
                        return unsafe { autovec::packed_sparse::<{ $op }>(col, c, in_sel, out) };
                    }
                    _ => {}
                }
            }
            packed_sparse_scalar::<{ $op }>(col, c, in_sel, out)
        }
    };
}
dispatch_packed_sparse!(sel_lt_i32_packed_sparse, i32, CMP_LT);
dispatch_packed_sparse!(sel_le_i32_packed_sparse, i32, CMP_LE);
dispatch_packed_sparse!(sel_ge_i32_packed_sparse, i32, CMP_GE);
dispatch_packed_sparse!(sel_gt_i32_packed_sparse, i32, CMP_GT);
dispatch_packed_sparse!(sel_eq_i32_packed_sparse, i32, CMP_EQ);
dispatch_packed_sparse!(sel_lt_i64_packed_sparse, i64, CMP_LT);
dispatch_packed_sparse!(sel_le_i64_packed_sparse, i64, CMP_LE);
dispatch_packed_sparse!(sel_ge_i64_packed_sparse, i64, CMP_GE);
dispatch_packed_sparse!(sel_gt_i64_packed_sparse, i64, CMP_GT);
dispatch_packed_sparse!(sel_eq_i64_packed_sparse, i64, CMP_EQ);

fn between_for_dense(
    col: &PackedInts,
    lo: i64,
    hi: i64,
    chunk: Range<usize>,
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if packed_simd_ok(col) {
        match (policy, simd_level()) {
            (SimdPolicy::Simd, SimdLevel::Avx512) => {
                // SAFETY: as in dispatch_packed_dense.
                return unsafe { avx512::packed_between_dense(col, lo, hi, chunk, out) };
            }
            (SimdPolicy::Auto, SimdLevel::Avx512) => {
                // SAFETY: ISA presence checked by simd_level().
                return unsafe { autovec::packed_between_dense(col, lo, hi, chunk, out) };
            }
            _ => {}
        }
    }
    packed_between_dense_scalar(col, lo, hi, chunk, out)
}

fn between_for_sparse(
    col: &PackedInts,
    lo: i64,
    hi: i64,
    in_sel: &[u32],
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if packed_simd_ok(col) {
        match (policy, simd_level()) {
            (SimdPolicy::Simd, SimdLevel::Avx512) => {
                // SAFETY: as in dispatch_packed_dense.
                return unsafe { avx512::packed_between_sparse(col, lo, hi, in_sel, out) };
            }
            (SimdPolicy::Auto, SimdLevel::Avx512) => {
                // SAFETY: ISA presence checked by simd_level().
                return unsafe { autovec::packed_between_sparse(col, lo, hi, in_sel, out) };
            }
            _ => {}
        }
    }
    packed_between_sparse_scalar(col, lo, hi, in_sel, out)
}

/// Fused `lo <= v <= hi` over the packed rows in `chunk` (32-bit
/// constants widened into the 64-bit decode domain).
pub fn sel_between_i32_for(
    col: &PackedInts,
    lo: i32,
    hi: i32,
    chunk: Range<usize>,
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    between_for_dense(col, lo as i64, hi as i64, chunk, out, policy)
}

/// Fused `lo <= v <= hi` over the packed rows in `chunk`.
pub fn sel_between_i64_for(
    col: &PackedInts,
    lo: i64,
    hi: i64,
    chunk: Range<usize>,
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    between_for_dense(col, lo, hi, chunk, out, policy)
}

/// Fused sparse `lo <= v <= hi` refining an input selection vector.
pub fn sel_between_i32_for_sparse(
    col: &PackedInts,
    lo: i32,
    hi: i32,
    in_sel: &[u32],
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    between_for_sparse(col, lo as i64, hi as i64, in_sel, out, policy)
}

/// Fused sparse `lo <= v <= hi` refining an input selection vector.
pub fn sel_between_i64_for_sparse(
    col: &PackedInts,
    lo: i64,
    hi: i64,
    in_sel: &[u32],
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    between_for_sparse(col, lo, hi, in_sel, out, policy)
}

/// Dense dictionary-code equality over a code chunk slice; emits
/// `base + i`. The AVX-512 flavor compares 64 codes per instruction
/// (avx512bw byte compare).
pub fn sel_eq_code_dense(codes: &[u8], code: u8, base: u32, out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
    #[cfg(target_arch = "x86_64")]
    match (policy, simd_level()) {
        (SimdPolicy::Simd, SimdLevel::Avx512) => {
            // SAFETY: ISA presence checked by simd_level().
            return unsafe { avx512::dense_code_eq(codes, code, base, out) };
        }
        (SimdPolicy::Auto, SimdLevel::Avx512) => {
            // SAFETY: ISA presence checked by simd_level().
            return unsafe { autovec::dense_code_eq(codes, code, base, out) };
        }
        _ => {}
    }
    dense_code_eq_scalar(codes, code, base, out)
}

/// Sparse dictionary-code equality refining an input selection vector
/// (scalar and autovec only: AVX-512 has no byte gather).
pub fn sel_eq_code_sparse(
    codes: &[u8],
    code: u8,
    in_sel: &[u32],
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if policy == SimdPolicy::Auto && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { autovec::sparse_code_eq(codes, code, in_sel, out) };
    }
    sparse_code_eq_scalar(codes, code, in_sel, out)
}

/// Dense `lo <= v <= hi` on a 64-bit column.
pub fn sel_between_i64_dense(
    col: &[i64],
    lo: i64,
    hi: i64,
    base: u32,
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if policy == SimdPolicy::Simd && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { avx512::dense_between_i64(col, lo, hi, base, out) };
    }
    dense_between_i64_scalar(col, lo, hi, base, out)
}

/// Sparse `lo <= v <= hi` on a 64-bit column.
pub fn sel_between_i64_sparse(
    col: &[i64],
    lo: i64,
    hi: i64,
    in_sel: &[u32],
    out: &mut Vec<u32>,
    policy: SimdPolicy,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if policy == SimdPolicy::Simd && simd_level() >= SimdLevel::Avx512 {
        // SAFETY: ISA presence checked by simd_level().
        return unsafe { avx512::sparse_between_i64(col, lo, hi, in_sel, out) };
    }
    sparse_between_i64_scalar(col, lo, hi, in_sel, out)
}

macro_rules! dispatch_dense_i32_col {
    ($name:ident, $op:expr) => {
        /// Dense column-vs-column selection over aligned chunk slices
        /// (e.g. Q4/Q12's `l_commitdate < l_receiptdate`); emits `base + i`.
        pub fn $name(a: &[i32], b: &[i32], base: u32, out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
            #[cfg(target_arch = "x86_64")]
            match (policy, simd_level()) {
                (SimdPolicy::Simd, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx512::dense_cmp_i32_col::<{ $op }>(a, b, base, out) };
                }
                (SimdPolicy::Auto, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { autovec::dense_cmp_i32_col::<{ $op }>(a, b, base, out) };
                }
                _ => {}
            }
            dense_cmp_i32_col_scalar::<{ $op }>(a, b, base, out)
        }
    };
}
dispatch_dense_i32_col!(sel_lt_i32_col_dense, CMP_LT);

macro_rules! dispatch_sparse_i32_col {
    ($name:ident, $op:expr) => {
        /// Sparse column-vs-column selection refining an input selection
        /// vector (both columns gathered at `in_sel[i]`).
        pub fn $name(a: &[i32], b: &[i32], in_sel: &[u32], out: &mut Vec<u32>, policy: SimdPolicy) -> usize {
            #[cfg(target_arch = "x86_64")]
            match (policy, simd_level()) {
                (SimdPolicy::Simd, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { avx512::sparse_cmp_i32_col::<{ $op }>(a, b, in_sel, out) };
                }
                (SimdPolicy::Auto, SimdLevel::Avx512) => {
                    // SAFETY: ISA presence checked by simd_level().
                    return unsafe { autovec::sparse_cmp_i32_col::<{ $op }>(a, b, in_sel, out) };
                }
                _ => {}
            }
            sparse_cmp_i32_col_scalar::<{ $op }>(a, b, in_sel, out)
        }
    };
}
dispatch_sparse_i32_col!(sel_lt_i32_col_sparse, CMP_LT);

/// Dense string-equality selection over `chunk` (scalar only: the paper's
/// string primitives are not SIMD candidates).
pub fn sel_eq_str_dense(
    col: &StrColumn,
    val: &[u8],
    chunk: std::ops::Range<usize>,
    out: &mut Vec<u32>,
) -> usize {
    out.clear();
    out.reserve(chunk.len());
    for i in chunk {
        if col.get_bytes(i) == val {
            out.push(i as u32);
        }
    }
    out.len()
}

/// Dense IN-list selection over `chunk` (Q12's
/// `l_shipmode IN ('MAIL','SHIP')`); one membership primitive instead of
/// per-value equality cascades so the selection vector stays ascending.
/// Scalar, like the other string primitives.
pub fn sel_in_str_dense(
    col: &StrColumn,
    vals: &[&[u8]],
    chunk: std::ops::Range<usize>,
    out: &mut Vec<u32>,
) -> usize {
    out.clear();
    out.reserve(chunk.len());
    for i in chunk {
        let s = col.get_bytes(i);
        if vals.contains(&s) {
            out.push(i as u32);
        }
    }
    out.len()
}

/// Dense single-byte-code equality (e.g. `l_returnflag`).
pub fn sel_eq_char_dense(col: &[u8], c: u8, base: u32, out: &mut Vec<u32>) -> usize {
    let p = out_ptr(out, col.len());
    let mut k = 0usize;
    for (i, &v) in col.iter().enumerate() {
        // SAFETY: k <= i < reserved capacity.
        unsafe { *p.add(k) = base + i as u32 };
        k += (v == c) as usize;
    }
    // SAFETY: the first k slots were initialized above.
    unsafe { out.set_len(k) };
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policies() -> Vec<SimdPolicy> {
        vec![SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto]
    }

    fn pseudo_i32(n: usize, m: i32) -> Vec<i32> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % m as u64) as i32)
            .collect()
    }

    #[test]
    fn dense_matches_model_all_policies() {
        let col = pseudo_i32(1000, 100);
        let model: Vec<u32> = (0..1000).filter(|&i| col[i] < 40).map(|i| i as u32 + 7).collect();
        for policy in policies() {
            let mut out = Vec::new();
            let k = sel_lt_i32_dense(&col, 40, 7, &mut out, policy);
            assert_eq!(k, out.len());
            assert_eq!(out, model, "{policy:?}");
        }
    }

    #[test]
    fn sparse_matches_model_all_policies() {
        let col = pseudo_i32(4096, 1000);
        let in_sel: Vec<u32> = (0..4096).step_by(3).map(|i| i as u32).collect();
        let model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| col[i as usize] >= 500)
            .collect();
        for policy in policies() {
            let mut out = Vec::new();
            sel_ge_i32_sparse(&col, 500, &in_sel, &mut out, policy);
            assert_eq!(out, model, "{policy:?}");
        }
    }

    #[test]
    fn sparse_i64_between_matches_model() {
        let col: Vec<i64> = (0..2048).map(|i| (i * 37 % 11) as i64).collect();
        let in_sel: Vec<u32> = (0..2048).filter(|i| i % 2 == 0).map(|i| i as u32).collect();
        let model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| (5..=7).contains(&col[i as usize]))
            .collect();
        for policy in policies() {
            let mut out = Vec::new();
            sel_between_i64_sparse(&col, 5, 7, &in_sel, &mut out, policy);
            assert_eq!(out, model, "{policy:?}");
        }
    }

    #[test]
    fn dense_i64_between_matches_model() {
        let col: Vec<i64> = (0..777).map(|i| (i * 13 % 29) as i64).collect();
        let model: Vec<u32> = (0..777u32)
            .filter(|&i| (10..=20).contains(&col[i as usize]))
            .collect();
        for policy in policies() {
            let mut out = Vec::new();
            sel_between_i64_dense(&col, 10, 20, 0, &mut out, policy);
            assert_eq!(out, model, "{policy:?}");
        }
    }

    #[test]
    fn empty_and_tail_sizes() {
        // Lengths around the SIMD width must all work (tail handling).
        for n in [0usize, 1, 7, 8, 15, 16, 17, 31, 33] {
            let col = pseudo_i32(n, 10);
            for policy in policies() {
                let mut out = Vec::new();
                sel_lt_i32_dense(&col, 5, 0, &mut out, policy);
                let model: Vec<u32> = (0..n).filter(|&i| col[i] < 5).map(|i| i as u32).collect();
                assert_eq!(out, model, "n={n} {policy:?}");
            }
        }
    }

    #[test]
    fn all_and_none_selected() {
        let col = vec![5i32; 100];
        for policy in policies() {
            let mut out = Vec::new();
            assert_eq!(sel_eq_i32_dense(&col, 5, 0, &mut out, policy), 100);
            assert_eq!(sel_eq_i32_dense(&col, 6, 0, &mut out, policy), 0);
        }
    }

    #[test]
    fn string_and_char_selection() {
        let col: StrColumn = ["BUILDING", "AUTOMOBILE", "BUILDING", "MACHINERY"]
            .into_iter()
            .collect();
        let mut out = Vec::new();
        sel_eq_str_dense(&col, b"BUILDING", 0..4, &mut out);
        assert_eq!(out, vec![0, 2]);
        let flags = vec![b'N', b'A', b'N', b'R', b'N'];
        sel_eq_char_dense(&flags, b'N', 10, &mut out);
        assert_eq!(out, vec![10, 12, 14]);
    }

    #[test]
    fn col_col_selection_matches_model() {
        let a = pseudo_i32(1000, 50);
        let b = pseudo_i32(1000, 50).into_iter().rev().collect::<Vec<_>>();
        let dense_model: Vec<u32> = (0..1000).filter(|&i| a[i] < b[i]).map(|i| i as u32 + 3).collect();
        let in_sel: Vec<u32> = (0..1000).step_by(3).map(|i| i as u32).collect();
        let sparse_model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| a[i as usize] < b[i as usize])
            .collect();
        for policy in policies() {
            let mut out = Vec::new();
            let k = sel_lt_i32_col_dense(&a, &b, 3, &mut out, policy);
            assert_eq!(k, out.len());
            assert_eq!(out, dense_model, "dense {policy:?}");
            sel_lt_i32_col_sparse(&a, &b, &in_sel, &mut out, policy);
            assert_eq!(out, sparse_model, "sparse {policy:?}");
        }
    }

    #[test]
    fn col_col_tail_sizes() {
        for n in [0usize, 1, 15, 16, 17, 31, 33] {
            let a = pseudo_i32(n, 8);
            let b = vec![4i32; n];
            let model: Vec<u32> = (0..n).filter(|&i| a[i] < 4).map(|i| i as u32).collect();
            for policy in policies() {
                let mut out = Vec::new();
                sel_lt_i32_col_dense(&a, &b, 0, &mut out, policy);
                assert_eq!(out, model, "n={n} {policy:?}");
            }
        }
    }

    #[test]
    fn in_list_string_selection() {
        let col: StrColumn = ["MAIL", "SHIP", "AIR", "TRUCK", "SHIP", "FOB", "MAIL"]
            .into_iter()
            .collect();
        let mut out = Vec::new();
        let k = sel_in_str_dense(&col, &[b"MAIL", b"SHIP"], 0..7, &mut out);
        assert_eq!(k, 4);
        assert_eq!(out, vec![0, 1, 4, 6]);
        // Empty list selects nothing; a sub-range respects bounds.
        assert_eq!(sel_in_str_dense(&col, &[], 0..7, &mut out), 0);
        sel_in_str_dense(&col, &[b"SHIP"], 2..5, &mut out);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn comparison_ops_agree_with_semantics() {
        let col = vec![-5i32, 0, 3, 7, 7, 9];
        let mut out = Vec::new();
        for policy in policies() {
            sel_le_i32_dense(&col, 7, 0, &mut out, policy);
            assert_eq!(out, vec![0, 1, 2, 3, 4], "{policy:?} le");
            sel_gt_i32_dense(&col, 7, 0, &mut out, policy);
            assert_eq!(out, vec![5], "{policy:?} gt");
            sel_ge_i32_dense(&col, 7, 0, &mut out, policy);
            assert_eq!(out, vec![3, 4, 5], "{policy:?} ge");
        }
    }
}
