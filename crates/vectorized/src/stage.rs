//! Stage-granular entry points for hybrid (per-pipeline) execution.
//!
//! Mirror of `dbep_compiled::stage` for the vectorized side: the
//! adaptive driver must be able to run a Tectorwise build pipeline in
//! isolation (its output hash table then feeds stages that may run
//! under either paradigm). A vectorized pipeline carries per-worker
//! scratch (selection vectors, hash vectors) alongside its build
//! shard, so the entry point threads a caller-supplied scratch state
//! through the morsel loop.

use dbep_runtime::join_ht::JoinHtShard;
use dbep_runtime::{ExecCtx, JoinHt, Morsels};
use std::ops::Range;

/// Run one vectorized σ→build pipeline to completion and return its
/// hash table. `init` creates a worker's scratch vectors; `each`
/// processes one morsel (chunk it with [`crate::chunks`], run the
/// primitive cascade, push survivors into the shard). `pace` runs once
/// per morsel with its row count (bytes accounting / IO throttling).
pub fn build_ht<K, S, E, P, I>(exec: &ExecCtx, total: usize, pace: P, init: I, each: E) -> JoinHt<K>
where
    K: Send + Sync,
    S: Send,
    I: Fn() -> S + Sync,
    E: Fn(&mut JoinHtShard<K>, &mut S, Range<usize>) + Sync,
    P: Fn(usize) + Sync,
{
    let pairs = exec.map_slots(
        Morsels::new(total),
        |_| (JoinHtShard::new(), init()),
        |(sh, scratch), r| {
            pace(r.len());
            each(sh, scratch, r);
        },
    );
    let shards = pairs.into_iter().map(|(sh, _)| sh).collect();
    JoinHt::from_shards(shards, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_runtime::hash::HashFn;

    #[test]
    fn builds_with_scratch_cascade() {
        let hf = HashFn::Murmur2;
        let exec = ExecCtx {
            threads: 2,
            run: None,
        };
        let n = 4_096usize;
        let vals: Vec<i32> = (0..n as i32).collect();
        let ht = build_ht::<i32, Vec<u32>, _, _, _>(
            &exec,
            n,
            |_| {},
            Vec::new,
            |sh, sel, r| {
                for c in crate::chunks(r, 256) {
                    sel.clear();
                    sel.extend(c.filter(|&i| vals[i] % 5 == 0).map(|i| i as u32));
                    for &t in sel.iter() {
                        let v = vals[t as usize];
                        sh.push(hf.hash(v as u64), v);
                    }
                }
            },
        );
        for probe in [0i32, 5, 7, 4095] {
            let h = hf.hash(probe as u64);
            let hit = ht.probe(h).any(|e| e.row == probe);
            assert_eq!(hit, probe % 5 == 0, "probe {probe}");
        }
    }
}
