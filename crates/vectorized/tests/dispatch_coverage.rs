//! Coverage sweep for the `SimdPolicy` dispatchers the other suites do
//! not reach: every comparison-op variant of the dense/sparse/fused
//! selection families plus `sum_i64` and `probe_join`, each checked
//! against a naive model under every policy. `dbep-lint`'s simd-parity
//! rule requires each dispatcher to appear in at least one test under a
//! `tests/` directory — this file is where the long tail lives.

use dbep_runtime::hash::murmur2;
use dbep_runtime::JoinHt;
use dbep_storage::{Arena, PackedInts};
use dbep_vectorized::map::sum_i64;
use dbep_vectorized::probe::{probe_join, ProbeBuffers};
use dbep_vectorized::sel::*;
use dbep_vectorized::SimdPolicy;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const POLICIES: [SimdPolicy; 3] = [SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto];

type Cmp32 = fn(i32, i32) -> bool;
type Cmp64 = fn(i64, i64) -> bool;

fn random_i32s(rng: &mut Rng, len: usize, span: i64) -> Vec<i32> {
    (0..len)
        .map(|_| (rng.below(span as u64) as i64 - span / 2) as i32)
        .collect()
}

fn random_sel(rng: &mut Rng, len: usize) -> Vec<u32> {
    let keep = 1 + rng.below(4);
    (0..len as u32).filter(|_| rng.below(4) < keep).collect()
}

#[test]
fn dense_i32_cmps_match_model() {
    let mut rng = Rng::new(0xd15c_0001);
    for _ in 0..24 {
        let len = 1 + rng.below(1200) as usize;
        let col = random_i32s(&mut rng, len, 64);
        let c = col[rng.below(col.len() as u64) as usize];
        let base = rng.below(1000) as u32;
        type DenseFn = fn(&[i32], i32, u32, &mut Vec<u32>, SimdPolicy) -> usize;
        let cases: [(DenseFn, Cmp32); 2] = [
            (sel_gt_i32_dense, |v, c| v > c),
            (sel_eq_i32_dense, |v, c| v == c),
        ];
        for (f, op) in cases {
            let model: Vec<u32> = col
                .iter()
                .enumerate()
                .filter(|&(_, &v)| op(v, c))
                .map(|(i, _)| base + i as u32)
                .collect();
            for policy in POLICIES {
                let mut out = Vec::new();
                let n = f(&col, c, base, &mut out, policy);
                assert_eq!(n, model.len(), "{policy:?}");
                assert_eq!(out, model, "{policy:?}");
            }
        }
    }
}

#[test]
fn sparse_i32_cmps_match_model() {
    let mut rng = Rng::new(0xd15c_0002);
    for _ in 0..24 {
        let len = 1 + rng.below(1200) as usize;
        let col = random_i32s(&mut rng, len, 64);
        let c = col[rng.below(col.len() as u64) as usize];
        let in_sel = random_sel(&mut rng, col.len());
        type SparseFn = fn(&[i32], i32, &[u32], &mut Vec<u32>, SimdPolicy) -> usize;
        let cases: [(SparseFn, Cmp32); 3] = [
            (sel_le_i32_sparse, |v, c| v <= c),
            (sel_ge_i32_sparse, |v, c| v >= c),
            (sel_eq_i32_sparse, |v, c| v == c),
        ];
        for (f, op) in cases {
            let model: Vec<u32> = in_sel
                .iter()
                .copied()
                .filter(|&i| op(col[i as usize], c))
                .collect();
            for policy in POLICIES {
                let mut out = Vec::new();
                let n = f(&col, c, &in_sel, &mut out, policy);
                assert_eq!(n, model.len(), "{policy:?}");
                assert_eq!(out, model, "{policy:?}");
            }
        }
    }
}

#[test]
fn packed_i32_cmps_match_flat() {
    let arena = Arena::new();
    let mut rng = Rng::new(0xd15c_0003);
    for target_width in [0u32, 1, 5, 8, 13, 24, 31] {
        let len = 1 + rng.below(1400) as usize;
        let min = rng.below(100_000) as i64 - 50_000;
        let vals: Vec<i64> = match target_width {
            0 => vec![min; len],
            w => (0..len).map(|_| min + rng.below(1u64 << w) as i64).collect(),
        };
        let packed = PackedInts::encode(&vals, &arena);
        let c = vals[rng.below(len as u64) as usize] as i32;
        let start = rng.below(len as u64) as usize;
        let chunk = start..len;
        let in_sel = random_sel(&mut rng, len);

        type PackedDenseFn = fn(&PackedInts, i32, std::ops::Range<usize>, &mut Vec<u32>, SimdPolicy) -> usize;
        let dense_cases: [(PackedDenseFn, Cmp64); 2] = [
            (sel_lt_i32_packed, |v, c| v < c),
            (sel_gt_i32_packed, |v, c| v > c),
        ];
        for (f, op) in dense_cases {
            let model: Vec<u32> = chunk
                .clone()
                .filter(|&i| op(vals[i], c as i64))
                .map(|i| i as u32)
                .collect();
            for policy in POLICIES {
                let mut out = Vec::new();
                let n = f(&packed, c, chunk.clone(), &mut out, policy);
                assert_eq!(n, model.len(), "w={target_width} {policy:?}");
                assert_eq!(out, model, "w={target_width} {policy:?}");
            }
        }

        type PackedSparseFn = fn(&PackedInts, i32, &[u32], &mut Vec<u32>, SimdPolicy) -> usize;
        let sparse_cases: [(PackedSparseFn, Cmp64); 3] = [
            (sel_le_i32_packed_sparse, |v, c| v <= c),
            (sel_ge_i32_packed_sparse, |v, c| v >= c),
            (sel_eq_i32_packed_sparse, |v, c| v == c),
        ];
        for (f, op) in sparse_cases {
            let model: Vec<u32> = in_sel
                .iter()
                .copied()
                .filter(|&i| op(vals[i as usize], c as i64))
                .collect();
            for policy in POLICIES {
                let mut out = Vec::new();
                let n = f(&packed, c, &in_sel, &mut out, policy);
                assert_eq!(n, model.len(), "w={target_width} {policy:?}");
                assert_eq!(out, model, "w={target_width} {policy:?}");
            }
        }
    }
}

#[test]
fn sum_i64_matches_model() {
    let mut rng = Rng::new(0xd15c_0004);
    for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1003] {
        let vals: Vec<i64> = (0..len).map(|_| rng.next() as i64 >> 16).collect();
        let model: i64 = vals.iter().fold(0i64, |a, &v| a.wrapping_add(v));
        for policy in POLICIES {
            assert_eq!(sum_i64(&vals, policy), model, "len={len} {policy:?}");
        }
    }
}

#[test]
fn probe_join_matches_model() {
    let mut rng = Rng::new(0xd15c_0005);
    // Build side with deliberate duplicates so chains are exercised.
    let build_keys: Vec<u64> = (0..600).map(|_| rng.below(200)).collect();
    let ht = JoinHt::build(build_keys.iter().map(|&k| (murmur2(k), k)));
    // Probe side: mix of present and absent keys.
    let probe_keys: Vec<u64> = (0..500).map(|_| rng.below(400)).collect();
    let hashes: Vec<u64> = probe_keys.iter().map(|&k| murmur2(k)).collect();
    let tuples: Vec<u32> = (0..probe_keys.len() as u32).collect();
    let model: Vec<(u32, u64)> = {
        let mut m: Vec<(u32, u64)> = tuples
            .iter()
            .flat_map(|&t| {
                let key = probe_keys[t as usize];
                build_keys
                    .iter()
                    .filter(move |&&k| k == key)
                    .map(move |&k| (t, k))
            })
            .collect();
        m.sort_unstable();
        m
    };
    for policy in POLICIES {
        let mut bufs = ProbeBuffers::default();
        let n = probe_join(
            &ht,
            &hashes,
            &tuples,
            |&row, t| row == probe_keys[t as usize],
            policy,
            &mut bufs,
        );
        assert_eq!(n, model.len(), "{policy:?}");
        let mut got: Vec<(u32, u64)> = bufs
            .match_tuple
            .iter()
            .zip(&bufs.match_entry)
            // SAFETY: match_entry holds addresses produced by probing `ht`.
            .map(|(&t, &addr)| (t, unsafe { ht.entry_at(addr) }.row))
            .collect();
        got.sort_unstable();
        assert_eq!(got, model, "{policy:?}");
    }
}
