//! Fused-vs-decode-then-select equivalence properties: every fused
//! primitive over a bit-packed / dictionary column must produce exactly
//! the selection vector (or gathered values) that decoding the column
//! and running the flat primitive would, for every [`SimdPolicy`], over
//! randomized widths, ranges, lengths, and selection densities.

use dbep_storage::{Arena, PackedInts};
use dbep_vectorized::gather::gather_packed_i64;
use dbep_vectorized::sel::*;
use dbep_vectorized::SimdPolicy;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const POLICIES: [SimdPolicy; 3] = [SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto];

/// Randomized packed column + its decoded flat form. Widths sweep the
/// SIMD-eligible range, width 0 (all-equal) and the raw 64-bit fallback.
fn random_column(rng: &mut Rng, arena: &Arena, target_width: u32) -> (PackedInts, Vec<i64>) {
    let len = 1 + rng.below(1500) as usize;
    let min = rng.next() as i64 % 1_000_000;
    let vals: Vec<i64> = match target_width {
        0 => vec![min; len],
        58.. => (0..len).map(|_| rng.next() as i64).collect(),
        w => (0..len)
            .map(|_| min.wrapping_add(rng.below(1u64 << w) as i64))
            .collect(),
    };
    let packed = PackedInts::encode(&vals, arena);
    let mut flat = Vec::new();
    packed.decode_into(&mut flat);
    assert_eq!(flat, vals, "roundtrip is the precondition of equivalence");
    (packed, flat)
}

fn random_sel(rng: &mut Rng, len: usize) -> Vec<u32> {
    let keep = 1 + rng.below(4);
    (0..len as u32).filter(|_| rng.below(4) < keep).collect()
}

#[test]
fn packed_dense_cmp_matches_flat() {
    let arena = Arena::new();
    let mut rng = Rng::new(0xfced_0001);
    for target_width in [0u32, 1, 3, 7, 8, 12, 13, 24, 31, 33, 49, 57, 60] {
        let (packed, flat) = random_column(&mut rng, &arena, target_width);
        let c = flat[rng.below(flat.len() as u64) as usize];
        let start = rng.below(flat.len() as u64) as usize;
        let chunk = start..flat.len();
        for policy in POLICIES {
            let mut fused = Vec::new();
            let mut model = Vec::new();
            sel_lt_i64_packed(&packed, c, chunk.clone(), &mut fused, policy);
            sel_lt_i64_dense(&flat[chunk.clone()], c, chunk.start as u32, &mut model, policy);
            assert_eq!(fused, model, "lt w={target_width} {policy:?}");

            sel_ge_i64_packed(&packed, c, chunk.clone(), &mut fused, policy);
            sel_ge_i64_sparse(
                &flat,
                c,
                &(chunk.clone().map(|i| i as u32).collect::<Vec<_>>()),
                &mut model,
                policy,
            );
            assert_eq!(fused, model, "ge w={target_width} {policy:?}");

            sel_eq_i64_packed(&packed, c, chunk.clone(), &mut fused, policy);
            let eq_model: Vec<u32> = chunk
                .clone()
                .filter(|&i| flat[i] == c)
                .map(|i| i as u32)
                .collect();
            assert_eq!(fused, eq_model, "eq w={target_width} {policy:?}");

            sel_le_i64_packed(&packed, c, chunk.clone(), &mut fused, policy);
            let le_model: Vec<u32> = chunk
                .clone()
                .filter(|&i| flat[i] <= c)
                .map(|i| i as u32)
                .collect();
            assert_eq!(fused, le_model, "le w={target_width} {policy:?}");

            sel_gt_i64_packed(&packed, c, chunk.clone(), &mut fused, policy);
            let gt_model: Vec<u32> = chunk.clone().filter(|&i| flat[i] > c).map(|i| i as u32).collect();
            assert_eq!(fused, gt_model, "gt w={target_width} {policy:?}");
        }
    }
}

#[test]
fn packed_sparse_cmp_matches_flat() {
    let arena = Arena::new();
    let mut rng = Rng::new(0xfced_0002);
    for target_width in [0u32, 1, 4, 9, 13, 21, 33, 47, 57, 61] {
        let (packed, flat) = random_column(&mut rng, &arena, target_width);
        let c = flat[rng.below(flat.len() as u64) as usize];
        let in_sel = random_sel(&mut rng, flat.len());
        for policy in POLICIES {
            let mut fused = Vec::new();
            let mut model = Vec::new();
            sel_lt_i64_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            sel_lt_i64_sparse(&flat, c, &in_sel, &mut model, policy);
            assert_eq!(fused, model, "lt w={target_width} {policy:?}");

            sel_ge_i64_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            sel_ge_i64_sparse(&flat, c, &in_sel, &mut model, policy);
            assert_eq!(fused, model, "ge w={target_width} {policy:?}");

            sel_le_i64_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            sel_le_i64_sparse(&flat, c, &in_sel, &mut model, policy);
            assert_eq!(fused, model, "le w={target_width} {policy:?}");

            sel_eq_i64_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            let eq_model: Vec<u32> = in_sel
                .iter()
                .copied()
                .filter(|&i| flat[i as usize] == c)
                .collect();
            assert_eq!(fused, eq_model, "eq w={target_width} {policy:?}");

            sel_gt_i64_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            let gt_model: Vec<u32> = in_sel.iter().copied().filter(|&i| flat[i as usize] > c).collect();
            assert_eq!(fused, gt_model, "gt w={target_width} {policy:?}");
        }
    }
}

#[test]
fn packed_i32_wrappers_match_flat() {
    // The i32-named wrappers widen the constant into the decode domain;
    // they must agree with i32 flat primitives on i32-ranged data.
    let arena = Arena::new();
    let mut rng = Rng::new(0xfced_0003);
    for _ in 0..12 {
        let len = 1 + rng.below(1200) as usize;
        let vals32: Vec<i32> = (0..len).map(|_| rng.next() as i32 % 10_000).collect();
        let packed = PackedInts::encode(&vals32, &arena);
        let c = vals32[rng.below(len as u64) as usize];
        let in_sel = random_sel(&mut rng, len);
        for policy in POLICIES {
            let mut fused = Vec::new();
            let mut model = Vec::new();
            sel_ge_i32_packed(&packed, c, 0..len, &mut fused, policy);
            sel_ge_i32_dense(&vals32, c, 0, &mut model, policy);
            assert_eq!(fused, model, "dense ge {policy:?}");

            sel_lt_i32_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            sel_lt_i32_sparse(&vals32, c, &in_sel, &mut model, policy);
            assert_eq!(fused, model, "sparse lt {policy:?}");

            sel_eq_i32_packed(&packed, c, 0..len, &mut fused, policy);
            sel_eq_i32_dense(&vals32, c, 0, &mut model, policy);
            assert_eq!(fused, model, "dense eq {policy:?}");

            sel_le_i32_packed(&packed, c, 0..len, &mut fused, policy);
            sel_le_i32_dense(&vals32, c, 0, &mut model, policy);
            assert_eq!(fused, model, "dense le {policy:?}");

            sel_gt_i32_packed_sparse(&packed, c, &in_sel, &mut fused, policy);
            sel_gt_i32_sparse(&vals32, c, &in_sel, &mut model, policy);
            assert_eq!(fused, model, "sparse gt {policy:?}");
        }
    }
}

#[test]
fn between_for_matches_flat() {
    let arena = Arena::new();
    let mut rng = Rng::new(0xfced_0004);
    for target_width in [0u32, 2, 4, 11, 26, 40, 57, 59] {
        let (packed, flat) = random_column(&mut rng, &arena, target_width);
        let a = flat[rng.below(flat.len() as u64) as usize];
        let b = flat[rng.below(flat.len() as u64) as usize];
        let (lo, hi) = (a.min(b), a.max(b));
        let in_sel = random_sel(&mut rng, flat.len());
        for policy in POLICIES {
            let mut fused = Vec::new();
            let mut model = Vec::new();
            sel_between_i64_for(&packed, lo, hi, 0..flat.len(), &mut fused, policy);
            sel_between_i64_dense(&flat, lo, hi, 0, &mut model, policy);
            assert_eq!(fused, model, "dense w={target_width} {policy:?}");

            sel_between_i64_for_sparse(&packed, lo, hi, &in_sel, &mut fused, policy);
            sel_between_i64_sparse(&flat, lo, hi, &in_sel, &mut model, policy);
            assert_eq!(fused, model, "sparse w={target_width} {policy:?}");
        }
    }
    // i32 wrapper over date-like data.
    let dates: Vec<i32> = (0..3000).map(|i| 9000 + (i * 37 % 2500)).collect();
    let packed = PackedInts::encode(&dates, &arena);
    for policy in POLICIES {
        let mut fused = Vec::new();
        let model: Vec<u32> = (0..3000u32)
            .filter(|&i| (9100..=9900).contains(&dates[i as usize]))
            .collect();
        sel_between_i32_for(&packed, 9100, 9900, 0..3000, &mut fused, policy);
        assert_eq!(fused, model, "{policy:?}");
        let in_sel: Vec<u32> = (0..3000).step_by(3).collect();
        let sparse_model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| (9100..=9900).contains(&dates[i as usize]))
            .collect();
        sel_between_i32_for_sparse(&packed, 9100, 9900, &in_sel, &mut fused, policy);
        assert_eq!(fused, sparse_model, "{policy:?}");
    }
}

#[test]
fn eq_code_matches_model() {
    let mut rng = Rng::new(0xfced_0005);
    for len in [0usize, 1, 63, 64, 65, 127, 128, 1000, 4096] {
        let cardinality = 1 + rng.below(7) as u8;
        let codes: Vec<u8> = (0..len).map(|_| rng.below(cardinality as u64) as u8).collect();
        let code = rng.below(cardinality as u64) as u8;
        let base = rng.below(1000) as u32;
        let model: Vec<u32> = codes
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == code)
            .map(|(i, _)| base + i as u32)
            .collect();
        let in_sel = random_sel(&mut rng, len);
        let sparse_model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| codes[i as usize] == code)
            .collect();
        for policy in POLICIES {
            let mut out = Vec::new();
            sel_eq_code_dense(&codes, code, base, &mut out, policy);
            assert_eq!(out, model, "dense len={len} {policy:?}");
            sel_eq_code_sparse(&codes, code, &in_sel, &mut out, policy);
            assert_eq!(out, sparse_model, "sparse len={len} {policy:?}");
        }
    }
}

#[test]
fn gather_packed_matches_flat_gather() {
    let arena = Arena::new();
    let mut rng = Rng::new(0xfced_0006);
    for target_width in [0u32, 1, 5, 13, 24, 31, 42, 57, 62] {
        let (packed, flat) = random_column(&mut rng, &arena, target_width);
        let sel = random_sel(&mut rng, flat.len());
        let model: Vec<i64> = sel.iter().map(|&i| flat[i as usize]).collect();
        for policy in POLICIES {
            let mut out = Vec::new();
            gather_packed_i64(&packed, &sel, policy, &mut out);
            assert_eq!(out, model, "w={target_width} {policy:?}");
        }
    }
}

#[test]
fn fused_tail_sizes() {
    // Lengths and chunk starts around the 8-lane width: tail handling
    // and non-zero chunk bases.
    let arena = Arena::new();
    let vals: Vec<i64> = (0..70).map(|i| i % 19).collect();
    let packed = PackedInts::encode(&vals, &arena);
    for start in [0usize, 1, 7, 8, 9] {
        for end in [start, start + 1, 33, 64, 65, 70] {
            if end > 70 || end < start {
                continue;
            }
            let model: Vec<u32> = (start..end).filter(|&i| vals[i] < 9).map(|i| i as u32).collect();
            for policy in POLICIES {
                let mut out = Vec::new();
                sel_lt_i64_packed(&packed, 9, start..end, &mut out, policy);
                assert_eq!(out, model, "{start}..{end} {policy:?}");
            }
        }
    }
}

#[test]
fn dense_i64_simd_satellite_matches_scalar() {
    // The satellite fix: sel_lt_i64_dense must honor SimdPolicy and all
    // flavors must agree (it previously hard-wired the scalar path).
    let mut rng = Rng::new(0xfced_0007);
    for n in [0usize, 1, 7, 8, 9, 500, 1023] {
        let col: Vec<i64> = (0..n).map(|_| rng.next() as i64 % 1000).collect();
        let model: Vec<u32> = col
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < 250)
            .map(|(i, _)| 5 + i as u32)
            .collect();
        for policy in POLICIES {
            let mut out = Vec::new();
            sel_lt_i64_dense(&col, 250, 5, &mut out, policy);
            assert_eq!(out, model, "n={n} {policy:?}");
        }
    }
}
