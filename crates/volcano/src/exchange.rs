//! Exchange-style intra-query parallelism for the Volcano engine.
//!
//! Volcano's classic answer to parallelism is the *exchange* operator
//! (Graefe): the plan itself stays single-threaded, and an operator
//! boundary fans tuples out to worker instances of the sub-plan and
//! unions their outputs. We implement the degenerate but general form
//! used by all the study's plans: each worker builds a complete instance
//! of the plan whose *driving scan* claims morsels from a shared cursor
//! ([`crate::ops::Scan::morsel_driven`]), so the probe-side input is
//! partitioned while blocking build sides (hash tables, sub-aggregates)
//! are constructed redundantly per worker — the honest cost model of a
//! baseline interpreter without shared operator state.
//!
//! The caller merges the unioned partial rows (e.g. re-aggregates them
//! through a final [`crate::ops::Aggregate`] over [`crate::ops::Rows`]).

use crate::ops::{collect, BoxOp, Row};
use dbep_runtime::ExecCtx;

/// Run `make_plan(worker)` on one worker instance per degree of
/// parallelism and union all produced rows. Instances are dispensed as
/// unit tasks through `exec` — drained by the shared pool's workers
/// when one is attached, by scoped threads otherwise (inline on the
/// caller for a single-threaded context).
///
/// **Scheduling granularity caveat:** each unit task drains an entire
/// plan instance, because Volcano operators hold state across the whole
/// scan (that per-instance state *is* the honest cost model of the
/// baseline interpreter). On a shared pool this makes a Volcano query
/// coarse-grained: a worker that picks up an instance keeps it until
/// the plan is exhausted, so the morsel-level inter-query fairness the
/// scheduler gives Typer/Tectorwise does not apply within a Volcano
/// plan, and long interpreted queries can head-of-line-block a small
/// pool. Serve baseline mixes therefore exclude Volcano by default.
pub fn union<'a, F>(exec: &ExecCtx, make_plan: F) -> Vec<Row>
where
    F: Fn(usize) -> BoxOp<'a> + Sync,
{
    exec.map_parts(exec.parallelism(), |w| collect(make_plan(w)))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::{Scan, Select};
    use dbep_runtime::Morsels;
    use dbep_storage::{ColumnData, Table};

    #[test]
    fn partitioned_scan_union_covers_all_rows() {
        let mut t = Table::new("t");
        let n = 50_000;
        t.add_column("k", ColumnData::I32((0..n).collect()));
        for threads in [1usize, 4] {
            let m = Morsels::new(n as usize);
            let rows = union(&ExecCtx::spawn(threads), |_| {
                Box::new(Select {
                    input: Box::new(Scan::new(&t, &["k"]).morsel_driven(&m)),
                    pred: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit_i32(10_000)),
                })
            });
            assert_eq!(rows.len(), 10_000, "{threads} threads");
        }
    }
}
