//! Interpreted expressions over tuple values.
//!
//! Every evaluation performs runtime type dispatch — the per-tuple
//! interpretation overhead that vectorization amortizes and compilation
//! eliminates (§4.2).

use std::fmt;

/// A runtime-typed value. Strings are owned (the traditional engine
//  copies freely).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val {
    I32(i32),
    I64(i64),
    I128(i128),
    Str(String),
    Byte(u8),
}

impl Val {
    pub fn as_i64(&self) -> i64 {
        match self {
            Val::I32(v) => *v as i64,
            Val::I64(v) => *v,
            Val::Byte(v) => *v as i64,
            other => panic!("expected numeric value, found {other:?}"),
        }
    }

    pub fn as_i128(&self) -> i128 {
        match self {
            Val::I128(v) => *v,
            other => other.as_i64() as i128,
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Val::Str(s) => s,
            other => panic!("expected string value, found {other:?}"),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I32(v) => write!(f, "{v}"),
            Val::I64(v) => write!(f, "{v}"),
            Val::I128(v) => write!(f, "{v}"),
            Val::Str(s) => write!(f, "{s}"),
            Val::Byte(b) => write!(f, "{}", *b as char),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators (fixed-point semantics are the plan's concern).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
}

/// An interpreted expression tree.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Column of the input row by position.
    Col(usize),
    Const(Val),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Arith(BinOp, Box<Expr>, Box<Expr>),
    /// SQL `LIKE '%needle%'`.
    Contains(Box<Expr>, String),
    /// SQL `LIKE 'prefix%'` (anchored at the start).
    StartsWith(Box<Expr>, String),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit_i64(v: i64) -> Expr {
        Expr::Const(Val::I64(v))
    }

    pub fn lit_i32(v: i32) -> Expr {
        Expr::Const(Val::I32(v))
    }

    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    pub fn arith(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Arith(op, Box::new(a), Box::new(b))
    }

    /// Evaluate against a row; full runtime dispatch per node.
    pub fn eval(&self, row: &[Val]) -> Val {
        match self {
            Expr::Col(i) => row[*i].clone(),
            Expr::Const(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(row), b.eval(row));
                let r = match (&a, &b) {
                    (Val::Str(x), Val::Str(y)) => x.cmp(y),
                    _ => a.as_i128().cmp(&b.as_i128()),
                };
                let out = match op {
                    CmpOp::Eq => r.is_eq(),
                    CmpOp::Ne => r.is_ne(),
                    CmpOp::Lt => r.is_lt(),
                    CmpOp::Le => r.is_le(),
                    CmpOp::Gt => r.is_gt(),
                    CmpOp::Ge => r.is_ge(),
                };
                Val::I32(out as i32)
            }
            Expr::And(es) => Val::I32(es.iter().all(|e| e.eval(row).as_i64() != 0) as i32),
            Expr::Or(es) => Val::I32(es.iter().any(|e| e.eval(row).as_i64() != 0) as i32),
            Expr::Arith(op, a, b) => {
                let (a, b) = (a.eval(row).as_i64(), b.eval(row).as_i64());
                Val::I64(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                })
            }
            Expr::Contains(e, needle) => {
                let v = e.eval(row);
                Val::I32(v.as_str().contains(needle.as_str()) as i32)
            }
            Expr::StartsWith(e, prefix) => {
                let v = e.eval(row);
                Val::I32(v.as_str().starts_with(prefix.as_str()) as i32)
            }
        }
    }

    /// Evaluate as a predicate.
    pub fn eval_bool(&self, row: &[Val]) -> bool {
        self.eval(row).as_i64() != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_comparison() {
        let row = vec![Val::I64(7), Val::I64(3)];
        let e = Expr::arith(BinOp::Mul, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&row), Val::I64(21));
        let c = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::col(1));
        assert!(c.eval_bool(&row));
        let c = Expr::cmp(CmpOp::Le, Expr::col(0), Expr::lit_i64(6));
        assert!(!c.eval_bool(&row));
    }

    #[test]
    fn boolean_connectives() {
        let row = vec![Val::I64(5)];
        let t = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit_i64(5));
        let f = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit_i64(6));
        assert!(Expr::And(vec![t.clone(), t.clone()]).eval_bool(&row));
        assert!(!Expr::And(vec![t.clone(), f.clone()]).eval_bool(&row));
        assert!(Expr::Or(vec![f.clone(), t.clone()]).eval_bool(&row));
        assert!(!Expr::Or(vec![f.clone(), f]).eval_bool(&row));
    }

    #[test]
    fn string_ops() {
        let row = vec![Val::Str("forest green linen".into())];
        assert!(Expr::Contains(Box::new(Expr::col(0)), "green".into()).eval_bool(&row));
        assert!(!Expr::Contains(Box::new(Expr::col(0)), "azure".into()).eval_bool(&row));
        assert!(Expr::StartsWith(Box::new(Expr::col(0)), "forest".into()).eval_bool(&row));
        assert!(!Expr::StartsWith(Box::new(Expr::col(0)), "green".into()).eval_bool(&row));
        let eq = Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::Const(Val::Str("forest green linen".into())),
        );
        assert!(eq.eval_bool(&row));
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn type_errors_are_loud() {
        Val::Str("x".into()).as_i64();
    }
}
