//! Classic **Volcano-style** tuple-at-a-time interpreter.
//!
//! The paper's introduction frames both modern paradigms against this
//! traditional model: pull-based `next()` returning one tuple, virtual
//! dispatch per operator per tuple, and expression *interpretation* with
//! type dispatch per value (§1, §4.2, Table 6 row "System R"). We build
//! it as the third engine to
//!
//! * stand in for the interpretation-overhead baseline of Table 2
//!   (DESIGN.md substitution 5),
//! * cover the pull+interpretation corner of the §9.2 taxonomy, and
//! * cross-validate results: every query must return the same rows on
//!   Volcano, Typer and Tectorwise.
//!
//! It is intentionally naive — boxed operators, `Vec<Val>` rows, hash
//! tables keyed by value vectors — because that *is* the model being
//! contrasted.

pub mod exchange;
pub mod expr;
pub mod ops;

pub use expr::{BinOp, CmpOp, Expr, Val};
pub use ops::{
    AggSpec, Aggregate, BoxOp, HashJoin, Operator, Project, Row, Rows, Scan, Select, SemiJoin, Sort, SortKey,
};
