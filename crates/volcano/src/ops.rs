//! Volcano operators: boxed, pull-based, one tuple per `next()` call.

use crate::expr::{Expr, Val};
use dbep_runtime::{Morsels, MORSEL_TUPLES};
use dbep_scheduler::QueryRun;
use dbep_storage::throttle::Throttle;
use dbep_storage::{ColumnData, Table};
use std::collections::HashMap;
use std::ops::Range;

/// One tuple.
pub type Row = Vec<Val>;

/// The iterator interface every operator implements (§1).
pub trait Operator {
    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Option<Row>;
}

/// Table scan producing the named columns in order.
///
/// By default it walks the whole table. [`Scan::morsel_driven`] makes it
/// claim tuple ranges from a shared [`Morsels`] cursor instead — the
/// mechanism the exchange-style parallel union uses to partition the
/// driving scan of a plan across workers (§6.1 applied to the baseline
/// engine). [`Scan::paced`] debits every claimed range against a shared
/// bandwidth [`Throttle`], giving Volcano the same emulated-SSD behaviour
/// (Table 5) as the other two engines.
pub struct Scan<'a> {
    cols: Vec<&'a ColumnData>,
    current: Range<usize>,
    next_dense: usize,
    len: usize,
    morsels: Option<&'a Morsels>,
    throttle: Option<&'a Throttle>,
    recorder: Option<&'a QueryRun>,
    bytes_per_row: usize,
}

impl<'a> Scan<'a> {
    pub fn new(table: &'a Table, columns: &[&str]) -> Self {
        let cols: Vec<&ColumnData> = columns.iter().map(|c| table.col(c)).collect();
        let bytes_per_row = if table.is_empty() {
            0
        } else {
            cols.iter().map(|c| c.byte_size() / table.len()).sum()
        };
        Scan {
            cols,
            current: 0..0,
            next_dense: 0,
            len: table.len(),
            morsels: None,
            throttle: None,
            recorder: None,
            bytes_per_row,
        }
    }

    /// Pace every claimed tuple range against `throttle` (no-op if `None`).
    pub fn paced(mut self, throttle: Option<&'a Throttle>) -> Self {
        self.throttle = throttle;
        self
    }

    /// Record every claimed tuple range's bytes into the run's scheduler
    /// stats (no-op if `None`). Volcano always scans the flat columns —
    /// its interpretation overhead is the baseline — so it reports flat
    /// byte volume even when encoded companions exist.
    pub fn recorded(mut self, run: Option<&'a QueryRun>) -> Self {
        self.recorder = run;
        self
    }

    /// Claim tuple ranges from a shared cursor instead of scanning densely.
    /// The cursor must dispense ranges within this table's row count.
    pub fn morsel_driven(mut self, morsels: &'a Morsels) -> Self {
        assert!(morsels.total() <= self.len, "morsel cursor exceeds table");
        self.morsels = Some(morsels);
        self
    }

    fn refill(&mut self) -> bool {
        let range = match self.morsels {
            Some(m) => match m.claim() {
                Some(r) => r,
                None => return false,
            },
            None => {
                if self.next_dense >= self.len {
                    return false;
                }
                let start = self.next_dense;
                let end = (start + MORSEL_TUPLES).min(self.len);
                self.next_dense = end;
                start..end
            }
        };
        let bytes = range.len() * self.bytes_per_row;
        if let Some(run) = self.recorder {
            run.add_bytes(bytes as u64);
        }
        if let Some(t) = self.throttle {
            t.consume(bytes);
        }
        self.current = range;
        true
    }
}

impl<'a> Operator for Scan<'a> {
    fn next(&mut self) -> Option<Row> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        let i = self.current.start;
        self.current.start += 1;
        Some(
            self.cols
                .iter()
                .map(|c| match c {
                    ColumnData::I32(v) => Val::I32(v[i]),
                    ColumnData::I64(v) => Val::I64(v[i]),
                    ColumnData::Date(v) => Val::I32(v[i]),
                    ColumnData::Char(v) => Val::Byte(v[i]),
                    ColumnData::Str(v) => Val::Str(v.get(i).to_string()),
                })
                .collect(),
        )
    }
}

/// Source over already-materialized rows (used to merge the partial
/// results of a parallel union back through a final operator chain).
pub struct Rows {
    iter: std::vec::IntoIter<Row>,
}

impl Rows {
    pub fn new(rows: Vec<Row>) -> Self {
        Rows {
            iter: rows.into_iter(),
        }
    }
}

impl Operator for Rows {
    fn next(&mut self) -> Option<Row> {
        self.iter.next()
    }
}

/// A boxed operator with borrowed table data.
pub type BoxOp<'a> = Box<dyn Operator + 'a>;

/// Tuple-at-a-time selection.
pub struct Select<'a> {
    pub input: BoxOp<'a>,
    pub pred: Expr,
}

impl<'a> Operator for Select<'a> {
    fn next(&mut self) -> Option<Row> {
        loop {
            let row = self.input.next()?;
            if self.pred.eval_bool(&row) {
                return Some(row);
            }
        }
    }
}

/// Tuple-at-a-time projection.
pub struct Project<'a> {
    pub input: BoxOp<'a>,
    pub exprs: Vec<Expr>,
}

impl<'a> Operator for Project<'a> {
    fn next(&mut self) -> Option<Row> {
        let row = self.input.next()?;
        Some(self.exprs.iter().map(|e| e.eval(&row)).collect())
    }
}

/// Blocking hash join: materializes the whole build side into a value-
/// keyed hash map, then streams the probe side (inner join, all matches).
pub struct HashJoin<'a> {
    probe: BoxOp<'a>,
    build_keys: Vec<Expr>,
    probe_keys: Vec<Expr>,
    table: HashMap<Vec<Val>, Vec<Row>>,
    pending: Vec<Row>,
}

impl<'a> HashJoin<'a> {
    /// Fully consumes `build` on construction (the pipeline breaker).
    pub fn new(mut build: BoxOp<'_>, build_keys: Vec<Expr>, probe: BoxOp<'a>, probe_keys: Vec<Expr>) -> Self {
        let mut table: HashMap<Vec<Val>, Vec<Row>> = HashMap::new();
        while let Some(row) = build.next() {
            let key: Vec<Val> = build_keys.iter().map(|e| e.eval(&row)).collect();
            table.entry(key).or_default().push(row);
        }
        HashJoin {
            probe,
            build_keys,
            probe_keys,
            table,
            pending: Vec::new(),
        }
    }
}

impl<'a> Operator for HashJoin<'a> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Some(row);
            }
            let probe_row = self.probe.next()?;
            let key: Vec<Val> = self.probe_keys.iter().map(|e| e.eval(&probe_row)).collect();
            debug_assert_eq!(key.len(), self.build_keys.len());
            if let Some(matches) = self.table.get(&key) {
                for b in matches {
                    let mut out = b.clone();
                    out.extend(probe_row.iter().cloned());
                    self.pending.push(out);
                }
            }
        }
    }
}

/// Blocking hash **semi**-join (SQL `EXISTS` / `IN` subquery):
/// materializes the build side's key set, then streams probe tuples that
/// have at least one build match — each probe tuple at most once, never
/// widened with build columns.
pub struct SemiJoin<'a> {
    probe: BoxOp<'a>,
    probe_keys: Vec<Expr>,
    keys: std::collections::HashSet<Vec<Val>>,
}

impl<'a> SemiJoin<'a> {
    /// Fully consumes `build` on construction (the pipeline breaker).
    pub fn new(mut build: BoxOp<'_>, build_keys: Vec<Expr>, probe: BoxOp<'a>, probe_keys: Vec<Expr>) -> Self {
        let mut keys = std::collections::HashSet::new();
        while let Some(row) = build.next() {
            keys.insert(build_keys.iter().map(|e| e.eval(&row)).collect::<Vec<Val>>());
        }
        SemiJoin {
            probe,
            probe_keys,
            keys,
        }
    }
}

impl<'a> Operator for SemiJoin<'a> {
    fn next(&mut self) -> Option<Row> {
        loop {
            let row = self.probe.next()?;
            let key: Vec<Val> = self.probe_keys.iter().map(|e| e.eval(&row)).collect();
            if self.keys.contains(&key) {
                return Some(row);
            }
        }
    }
}

/// Aggregate function specifications.
#[derive(Clone, Debug)]
pub enum AggSpec {
    /// 64-bit sum of an expression.
    SumI64(Expr),
    /// 128-bit sum (for scale-6 decimals).
    SumI128(Expr),
    Count,
}

/// Blocking hash aggregation (group by a list of expressions).
pub struct Aggregate {
    out: std::vec::IntoIter<Row>,
}

impl Aggregate {
    pub fn new(mut input: BoxOp<'_>, group_by: Vec<Expr>, aggs: Vec<AggSpec>) -> Self {
        let mut groups: HashMap<Vec<Val>, Vec<Val>> = HashMap::new();
        while let Some(row) = input.next() {
            let key: Vec<Val> = group_by.iter().map(|e| e.eval(&row)).collect();
            let state = groups.entry(key).or_insert_with(|| {
                aggs.iter()
                    .map(|a| match a {
                        AggSpec::SumI64(_) => Val::I64(0),
                        AggSpec::SumI128(_) => Val::I128(0),
                        AggSpec::Count => Val::I64(0),
                    })
                    .collect()
            });
            for (slot, spec) in state.iter_mut().zip(&aggs) {
                match spec {
                    AggSpec::SumI64(e) => {
                        *slot = Val::I64(slot.as_i64().wrapping_add(e.eval(&row).as_i64()));
                    }
                    AggSpec::SumI128(e) => {
                        *slot = Val::I128(slot.as_i128() + e.eval(&row).as_i128());
                    }
                    AggSpec::Count => *slot = Val::I64(slot.as_i64() + 1),
                }
            }
        }
        let rows: Vec<Row> = groups
            .into_iter()
            .map(|(mut k, v)| {
                k.extend(v);
                k
            })
            .collect();
        Aggregate {
            out: rows.into_iter(),
        }
    }
}

impl Operator for Aggregate {
    fn next(&mut self) -> Option<Row> {
        self.out.next()
    }
}

/// Sort key: column position + direction.
#[derive(Clone, Copy, Debug)]
pub struct SortKey {
    pub col: usize,
    pub desc: bool,
}

/// Blocking sort with optional LIMIT.
pub struct Sort {
    out: std::vec::IntoIter<Row>,
}

impl Sort {
    pub fn new(mut input: BoxOp<'_>, keys: Vec<SortKey>, limit: Option<usize>) -> Self {
        let mut rows = Vec::new();
        while let Some(r) = input.next() {
            rows.push(r);
        }
        rows.sort_by(|a, b| {
            for k in &keys {
                let ord = a[k.col].partial_cmp(&b[k.col]).expect("comparable vals");
                let ord = if k.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(l) = limit {
            rows.truncate(l);
        }
        Sort {
            out: rows.into_iter(),
        }
    }
}

impl Operator for Sort {
    fn next(&mut self) -> Option<Row> {
        self.out.next()
    }
}

/// Drain an operator into a vector of rows.
pub fn collect(mut op: BoxOp<'_>) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(r) = op.next() {
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, CmpOp};
    use dbep_storage::column::ColumnData;

    fn test_table() -> Table {
        let mut t = Table::new("t");
        t.add_column("k", ColumnData::I32(vec![1, 2, 3, 4]))
            .add_column("v", ColumnData::I64(vec![10, 20, 30, 40]))
            .add_column("s", ColumnData::Str(["a", "b", "a", "b"].into_iter().collect()));
        t
    }

    #[test]
    fn scan_select_project() {
        let t = test_table();
        let plan = Project {
            input: Box::new(Select {
                input: Box::new(Scan::new(&t, &["k", "v"])),
                pred: Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::lit_i64(15)),
            }),
            exprs: vec![Expr::arith(BinOp::Mul, Expr::col(0), Expr::lit_i64(2))],
        };
        let rows = collect(Box::new(plan));
        assert_eq!(
            rows,
            vec![vec![Val::I64(4)], vec![Val::I64(6)], vec![Val::I64(8)]]
        );
    }

    #[test]
    fn join_produces_all_matches() {
        let t = test_table();
        // Self-join on s: 'a' x 'a' (2x2=4 rows) + 'b' x 'b' (4) = 8.
        let join = HashJoin::new(
            Box::new(Scan::new(&t, &["k", "s"])),
            vec![Expr::col(1)],
            Box::new(Scan::new(&t, &["k", "s"])),
            vec![Expr::col(1)],
        );
        let rows = collect(Box::new(join));
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r[1], r[3], "join key mismatch in {r:?}");
        }
    }

    #[test]
    fn semi_join_emits_probe_rows_once() {
        let t = test_table();
        // Build side has duplicate s values; every probe row with a
        // matching s must come out exactly once, unwidened.
        let semi = SemiJoin::new(
            Box::new(Select {
                input: Box::new(Scan::new(&t, &["s", "v"])),
                pred: Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::Const(Val::Str("a".into()))),
            }),
            vec![Expr::col(0)],
            Box::new(Scan::new(&t, &["k", "s"])),
            vec![Expr::col(1)],
        );
        let rows = collect(Box::new(semi));
        assert_eq!(
            rows,
            vec![
                vec![Val::I32(1), Val::Str("a".into())],
                vec![Val::I32(3), Val::Str("a".into())],
            ]
        );
    }

    #[test]
    fn semi_join_empty_build_side() {
        let t = test_table();
        let semi = SemiJoin::new(
            Box::new(Select {
                input: Box::new(Scan::new(&t, &["s"])),
                pred: Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::Const(Val::Str("zzz".into()))),
            }),
            vec![Expr::col(0)],
            Box::new(Scan::new(&t, &["k", "s"])),
            vec![Expr::col(1)],
        );
        assert!(collect(Box::new(semi)).is_empty());
    }

    #[test]
    fn aggregate_groups_and_sums() {
        let t = test_table();
        let agg = Aggregate::new(
            Box::new(Scan::new(&t, &["s", "v"])),
            vec![Expr::col(0)],
            vec![AggSpec::SumI64(Expr::col(1)), AggSpec::Count],
        );
        let mut rows = collect(Box::new(agg));
        rows.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert_eq!(
            rows,
            vec![
                vec![Val::Str("a".into()), Val::I64(40), Val::I64(2)],
                vec![Val::Str("b".into()), Val::I64(60), Val::I64(2)],
            ]
        );
    }

    #[test]
    fn sort_with_limit() {
        let t = test_table();
        let sort = Sort::new(
            Box::new(Scan::new(&t, &["k", "v"])),
            vec![SortKey { col: 1, desc: true }],
            Some(2),
        );
        let rows = collect(Box::new(sort));
        assert_eq!(
            rows,
            vec![vec![Val::I32(4), Val::I64(40)], vec![Val::I32(3), Val::I64(30)]]
        );
    }

    #[test]
    fn empty_inputs_everywhere() {
        let mut t = Table::new("e");
        t.add_column("k", ColumnData::I32(vec![]));
        let agg = Aggregate::new(
            Box::new(Scan::new(&t, &["k"])),
            vec![Expr::col(0)],
            vec![AggSpec::Count],
        );
        assert!(collect(Box::new(agg)).is_empty());
    }
}
