//! A realistic OLAP scenario: a month-end reporting run executing the
//! pricing summary (Q1), revenue forecast (Q6) and profit-by-nation (Q9)
//! reports on all available cores, comparing the two modern paradigms.
//! Each report is prepared once through the `Session` API and re-run
//! per engine — the prepare-once / execute-many shape of production
//! reporting traffic.
//!
//! ```text
//! cargo run --release --example analytics_report [sf]
//! ```

use db_engine_paradigms::prelude::*;
use std::time::Instant;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("generating TPC-H SF={sf} with {threads} threads...");
    let db = dbep_datagen::tpch::generate_par(sf, 42, threads);

    let session = Session::with_cfg(db, ExecCfg::with_threads(threads));
    let reports = [
        (QueryId::Q1, "Pricing summary (Q1)"),
        (QueryId::Q6, "Revenue change forecast (Q6)"),
        (QueryId::Q9, "Product-type profit by nation/year (Q9)"),
    ];
    for (q, title) in reports {
        println!("\n=== {title} ===");
        let report = session.prepare(q);
        let t = Instant::now();
        let compiled = report.run(Engine::Typer);
        let t_typer = t.elapsed();
        let t = Instant::now();
        let vectorized = report.run(Engine::Tectorwise);
        let t_tw = t.elapsed();
        assert_eq!(compiled, vectorized);
        println!(
            "Typer {t_typer:?} | Tectorwise {t_tw:?} | {} rows",
            compiled.len()
        );
        // Print the first few report lines.
        let preview = QueryResult {
            columns: compiled.columns.clone(),
            rows: compiled.rows.iter().take(6).cloned().collect(),
        };
        println!("{}", preview.to_table());
    }
}
