//! The §8.1 argument, live: a stored procedure ("fetch an order and
//! aggregate its lines") executed as compiled code, as a vectorized plan
//! with vectors of one, and as a freshly interpreted Volcano plan.
//!
//! ```text
//! cargo run --release --example oltp_procedures [sf]
//! ```

use db_engine_paradigms::prelude::*;
use dbep_queries::oltp;
use std::time::Instant;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("generating TPC-H SF={sf}...");
    let db = dbep_datagen::tpch::generate(sf, 42);
    let idx = oltp::OltpIndex::build(&db, HashFn::Crc);
    let n_orders = db.table("orders").len() as i32;

    // A deterministic "transaction mix".
    let keys: Vec<i32> = (0..50_000).map(|i| (i * 7919 % n_orders) + 1).collect();

    let t = Instant::now();
    let mut check = 0i64;
    for &k in &keys {
        check += oltp::lookup_typer(&db, &idx, k).expect("order exists").sum_qty;
    }
    let typer = t.elapsed();
    println!(
        "Typer (compiled procedure):  {:>10.0} lookups/s",
        keys.len() as f64 / typer.as_secs_f64()
    );

    let mut scratch = oltp::TwLookupScratch::new();
    let t = Instant::now();
    let mut check_tw = 0i64;
    for &k in &keys {
        check_tw += oltp::lookup_tectorwise(&db, &idx, k, &mut scratch)
            .expect("order exists")
            .sum_qty;
    }
    let tw = t.elapsed();
    println!(
        "Tectorwise (vectors of 1):   {:>10.0} lookups/s",
        keys.len() as f64 / tw.as_secs_f64()
    );
    assert_eq!(check, check_tw, "engines disagree");

    // Volcano re-plans and scans per statement — sample a few only.
    let t = Instant::now();
    for &k in &keys[..5] {
        oltp::lookup_volcano(&db, k).expect("order exists");
    }
    let volcano = t.elapsed();
    println!(
        "Volcano (interpreted scan):  {:>10.0} lookups/s",
        5.0 / volcano.as_secs_f64()
    );
    println!(
        "\ncompiled vs vectorized advantage: {:.1}x (the §8.1 OLTP argument)",
        tw.as_secs_f64() / typer.as_secs_f64()
    );
}
