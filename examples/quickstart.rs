//! Quickstart: generate a small TPC-H database, prepare one query
//! through the `Session` API, run it on all three execution paradigms,
//! verify they agree, then re-bind the template to a different workload
//! instance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use db_engine_paradigms::prelude::*;
use db_engine_paradigms::queries::params::Q3Params;
use db_engine_paradigms::storage::types::date;
use std::time::Instant;

fn main() {
    // 1. Data: a deterministic TPC-H instance at scale factor 0.1
    //    (~600k lineitem rows).
    let t = Instant::now();
    let db = dbep_datagen::tpch::generate(0.1, 42);
    println!(
        "generated TPC-H SF=0.1 in {:?} ({} bytes)\n",
        t.elapsed(),
        db.byte_size()
    );

    // 2. A session owns the shared database plus a default ExecCfg
    //    (single-threaded, 1024-tuple vectors, scalar primitives).
    let session = Session::new(db);

    // 3. Prepare TPC-H Q3 once — the paper's parameters (BUILDING,
    //    1995-03-15) bind by default — and run it under each paradigm.
    let q3 = session.prepare(QueryId::Q3);
    for engine in [Engine::Volcano, Engine::Tectorwise, Engine::Typer] {
        let t = Instant::now();
        let result = q3.run(engine);
        println!("{engine:?}: {} rows in {:?}", result.len(), t.elapsed());
    }

    // 4. The engines must agree bit-for-bit.
    let typer = q3.run(Engine::Typer);
    let tw = q3.run(Engine::Tectorwise);
    assert_eq!(typer, tw, "engines disagree!");
    println!("\nTPC-H Q3 top orders by revenue:\n{}", typer.to_table());

    // 5. Same template, different workload instance: bind another
    //    market segment and cutoff date, run the same prepared shape.
    let params = Q3Params::new("MACHINERY", date(1995, 3, 7)).expect("valid substitution");
    let q3_machinery = session.prepare_params(params);
    let result = q3_machinery.run(Engine::Typer);
    assert_eq!(result, q3_machinery.run(Engine::Tectorwise));
    println!("Q3 re-bound to MACHINERY / 1995-03-07:\n{}", result.to_table());
}
