//! Quickstart: generate a small TPC-H database, run one query on all
//! three execution paradigms, verify they agree, and print the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use db_engine_paradigms::prelude::*;
use std::time::Instant;

fn main() {
    // 1. Data: a deterministic TPC-H instance at scale factor 0.1
    //    (~600k lineitem rows).
    let t = Instant::now();
    let db = dbep_datagen::tpch::generate(0.1, 42);
    println!(
        "generated TPC-H SF=0.1 in {:?} ({} bytes)\n",
        t.elapsed(),
        db.byte_size()
    );

    // 2. One configuration shared by all engines: single-threaded,
    //    default vector size (1024), scalar primitives.
    let cfg = ExecCfg::default();

    // 3. Run TPC-H Q3 under each paradigm.
    for engine in [Engine::Volcano, Engine::Tectorwise, Engine::Typer] {
        let t = Instant::now();
        let result = run(engine, QueryId::Q3, &db, &cfg);
        println!("{engine:?}: {} rows in {:?}", result.len(), t.elapsed());
    }

    // 4. The engines must agree bit-for-bit.
    let typer = run(Engine::Typer, QueryId::Q3, &db, &cfg);
    let tw = run(Engine::Tectorwise, QueryId::Q3, &db, &cfg);
    assert_eq!(typer, tw, "engines disagree!");

    println!("\nTPC-H Q3 top orders by revenue:\n{}", typer.to_table());
}
