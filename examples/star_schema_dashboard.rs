//! Star-schema dashboard workload (§4.4): the four SSB query flights a
//! BI dashboard would fire, prepared once per flight and run on both
//! modern engines with the SIMD policy of your choice.
//!
//! ```text
//! cargo run --release --example star_schema_dashboard [sf] [scalar|simd|auto]
//! ```

use db_engine_paradigms::prelude::*;
use std::time::Instant;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let policy = match std::env::args().nth(2).as_deref() {
        Some("simd") => SimdPolicy::Simd,
        Some("auto") => SimdPolicy::Auto,
        _ => SimdPolicy::Scalar,
    };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("generating SSB SF={sf}...");
    let db = dbep_datagen::ssb::generate_par(sf, 42, threads);
    let session = Session::with_cfg(
        db,
        ExecCfg {
            threads,
            policy,
            ..Default::default()
        },
    );

    for q in QueryId::SSB {
        let flight = session.prepare(q);
        let t = Instant::now();
        let typer = flight.run(Engine::Typer);
        let t_typer = t.elapsed();
        let t = Instant::now();
        let tw = flight.run(Engine::Tectorwise);
        let t_tw = t.elapsed();
        assert_eq!(typer, tw);
        println!(
            "\n=== {} ({policy:?}) — Typer {t_typer:?}, Tectorwise {t_tw:?} ===",
            q.name()
        );
        let preview = QueryResult {
            columns: tw.columns.clone(),
            rows: tw.rows.iter().take(5).cloned().collect(),
        };
        println!("{}", preview.to_table());
    }
}
