//! Reproduce the §4.3 tuning exercise interactively: sweep the
//! Tectorwise vector size on one query and watch the U-shaped curve —
//! tiny vectors degenerate to a Volcano interpreter, huge vectors fall
//! out of cache (full materialization, the MonetDB model).
//!
//! ```text
//! cargo run --release --example vector_size_tuning [sf]
//! ```

use db_engine_paradigms::prelude::*;
use std::time::Instant;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    println!("generating TPC-H SF={sf}...");
    let db = dbep_datagen::tpch::generate(sf, 42);
    // Prepare once; every sweep point is a per-call cfg override on the
    // same prepared query.
    let session = Session::new(db);
    let q1 = session.prepare(QueryId::Q1);

    println!("\nTPC-H Q1 on Tectorwise, single thread:");
    println!("{:>12} {:>12}", "vector size", "runtime");
    let mut best = (0usize, f64::MAX);
    for vs in [
        1usize,
        4,
        16,
        64,
        256,
        1024,
        4096,
        1 << 14,
        1 << 16,
        1 << 20,
        usize::MAX >> 1,
    ] {
        let cfg = ExecCfg {
            vector_size: vs,
            ..Default::default()
        };
        // Warm-up + measured run.
        q1.run_with(Engine::Tectorwise, &cfg);
        let t = Instant::now();
        let r = q1.run_with(Engine::Tectorwise, &cfg);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(r.len(), 4);
        let label = if vs > 1 << 22 {
            "Max".to_string()
        } else {
            vs.to_string()
        };
        println!("{label:>12} {:>9.1} ms", secs * 1e3);
        if secs < best.1 {
            best = (vs, secs);
        }
    }
    println!("\nbest vector size: {} (the paper lands on ~1000 — §4.3)", best.0);
}
