#!/usr/bin/env bash
# Open-loop latency-vs-offered-load sweep (EXPERIMENTS.md "load").
#
# Runs the `load` experiment over TCP loopback — pool vs spawn, all
# four engines, a geometric rate ladder — writes the raw sweep to
# sweep.json, prints the per-curve knee summary, and (with --record)
# merges the document into ../../BENCH_serve.json under "open_loop".
#
# Usage:
#   ./run.sh [--sf 0.1] [--rate 16,32,64,128,256] [--duration-ms 2000]
#            [--conns 32] [--record]
set -euo pipefail
cd "$(dirname "$0")"

SF=0.1
RATES=16,32,64,128,256
WINDOW_MS=2000
CONNS=32
RECORD=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --sf) SF="$2"; shift 2 ;;
        --rate) RATES="$2"; shift 2 ;;
        --duration-ms) WINDOW_MS="$2"; shift 2 ;;
        --conns) CONNS="$2"; shift 2 ;;
        --record) RECORD=1; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

cargo build --release -p dbep-bench >&2

../../target/release/experiments load \
    --sf "$SF" --rate "$RATES" --duration-ms "$WINDOW_MS" \
    --conns "$CONNS" --mode both --json > sweep.json

python3 summarize.py sweep.json

if [[ "$RECORD" == 1 ]]; then
    python3 summarize.py sweep.json --merge-into ../../BENCH_serve.json
    echo "recorded as the open_loop section of BENCH_serve.json" >&2
fi
