#!/usr/bin/env python3
"""Post-process an open-loop `load` sweep (see run.sh).

Prints each (mode, engine) curve as an offered-vs-goodput table with
tail latencies and the identified knee, then a cross-curve comparison
of knees. With --merge-into, embeds the sweep document as the
"open_loop" key of an existing BENCH_serve.json (the serving-layer
perf record grown across PRs).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("experiment") != "load":
        sys.exit(f"{path} is not a load sweep document")
    return doc


def print_curves(doc):
    print(
        f"# open-loop sweep: SF={doc['sf']}, {doc['threads']} worker thread(s), "
        f"{doc['conns']} connections, {doc['window_ms']} ms windows"
    )
    for curve in doc["curves"]:
        knee = curve["knee_per_s"]
        knee_txt = f"knee {knee:.0f}/s" if knee is not None else "saturated below sweep"
        print(f"\n## {curve['mode']} / {curve['engine']} — {knee_txt}")
        print(f"{'offered':>8} {'sent':>6} {'done':>6} {'retry':>6} {'fail':>5} "
              f"{'goodput':>8} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}")
        for p in curve["points"]:
            print(
                f"{p['offered_per_s']:>8} {p['sent']:>6} {p['done']:>6} "
                f"{p['retried']:>6} {p['failed']:>5} {p['goodput_per_s']:>8.1f} "
                f"{p['p50_ms']:>8.1f} {p['p95_ms']:>8.1f} {p['p99_ms']:>8.1f}"
            )
    print("\n## knees (largest offered rate with goodput within 95% of the schedule)")
    for curve in doc["curves"]:
        knee = curve["knee_per_s"]
        txt = f"{knee:.0f}/s" if knee is not None else "below sweep"
        print(f"  {curve['mode']:<6} {curve['engine']:<11} {txt}")


def merge(doc, target):
    with open(target) as f:
        bench = json.load(f)
    bench["open_loop"] = doc
    with open(target, "w") as f:
        json.dump(bench, f, indent=2)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("sweep", help="sweep.json produced by `experiments load --json`")
    ap.add_argument("--merge-into", metavar="BENCH_JSON",
                    help="embed the sweep as the 'open_loop' key of this file")
    args = ap.parse_args()
    doc = load(args.sweep)
    if args.merge_into:
        merge(doc, args.merge_into)
    else:
        print_curves(doc)


if __name__ == "__main__":
    main()
