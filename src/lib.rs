//! # db-engine-paradigms
//!
//! A Rust reproduction of the test system from *"Everything You Always
//! Wanted to Know About Compiled and Vectorized Queries But Were Afraid to
//! Ask"* (Kersten, Leis, Kemper, Neumann, Pavlo, Boncz — VLDB 2018).
//!
//! Two query engines share one set of algorithms, data structures and a
//! morsel-driven parallelization framework, so that the only difference
//! between them is the execution paradigm:
//!
//! * [`compiled`] — **Typer**: data-centric, push-based, fused pipelines
//!   (what a HyPer-style code generator emits).
//! * [`vectorized`] — **Tectorwise**: pull-based, vector-at-a-time
//!   interpretation over type-specialized primitives (VectorWise style).
//! * [`volcano`] — classic tuple-at-a-time interpreter, the traditional
//!   baseline.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use db_engine_paradigms::prelude::*;
//!
//! // Generate a tiny TPC-H database (scale factor 0.01) and run Q6 on
//! // all three engines — results must be identical.
//! let db = dbep_datagen::tpch::generate(0.01, 42);
//! let cfg = ExecCfg::default();
//! let typer = run(Engine::Typer, QueryId::Q6, &db, &cfg);
//! let tw = run(Engine::Tectorwise, QueryId::Q6, &db, &cfg);
//! let volcano = run(Engine::Volcano, QueryId::Q6, &db, &cfg);
//! assert_eq!(typer, tw);
//! assert_eq!(typer, volcano);
//! ```
pub use dbep_core::*;
