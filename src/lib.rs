//! # db-engine-paradigms
//!
//! A Rust reproduction of the test system from *"Everything You Always
//! Wanted to Know About Compiled and Vectorized Queries But Were Afraid to
//! Ask"* (Kersten, Leis, Kemper, Neumann, Pavlo, Boncz — VLDB 2018).
//!
//! Two query engines share one set of algorithms, data structures and a
//! morsel-driven parallelization framework, so that the only difference
//! between them is the execution paradigm:
//!
//! * [`compiled`] — **Typer**: data-centric, push-based, fused pipelines
//!   (what a HyPer-style code generator emits).
//! * [`vectorized`] — **Tectorwise**: pull-based, vector-at-a-time
//!   interpretation over type-specialized primitives (VectorWise style).
//! * [`volcano`] — classic tuple-at-a-time interpreter, the traditional
//!   baseline.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use db_engine_paradigms::prelude::*;
//!
//! // Generate a tiny TPC-H database (scale factor 0.01), prepare Q6
//! // once (the paper's parameters bind by default), and run it on all
//! // three engines — results must be identical.
//! let db = dbep_datagen::tpch::generate(0.01, 42);
//! let session = Session::new(db);
//! let q6 = session.prepare(QueryId::Q6);
//! let typer = q6.run(Engine::Typer);
//! let tw = q6.run(Engine::Tectorwise);
//! let volcano = q6.run(Engine::Volcano);
//! assert_eq!(typer, tw);
//! assert_eq!(typer, volcano);
//!
//! // Bind a different workload instance of the same template.
//! use db_engine_paradigms::queries::params::Q6Params;
//! let q6_95 = session.prepare_params(Q6Params::new(1995, 3, 30)?);
//! assert_eq!(q6_95.run(Engine::Typer), q6_95.run(Engine::Volcano));
//! # Ok::<(), db_engine_paradigms::queries::params::ParamError>(())
//! ```
pub use dbep_core::*;
