//! Bandwidth accounting for compressed scans: the whole point of the
//! encoded storage layer is that bandwidth-bound plans touch fewer
//! bytes. This pins the claim with the scheduler-side `bytes_scanned`
//! counter: on TPC-H at SF 0.1, Q6 and Q1 over encoded storage must
//! scan at most half the bytes of the flat layout — with identical
//! results — on both block-at-a-time engines. Volcano always scans the
//! flat columns, so its byte volume must not change (it is the honest
//! uncompressed baseline in the comparison).

use db_engine_paradigms::prelude::*;

const SF: f64 = 0.1;
const THREADS: usize = 4;

#[test]
fn q6_q1_bytes_scanned_at_least_halved_by_encoding() {
    let flat = Session::with_cfg(
        dbep_datagen::tpch::generate_par(SF, 42, THREADS),
        ExecCfg::with_threads(THREADS),
    );
    let enc = Session::with_cfg(
        dbep_datagen::tpch::generate_encoded_par(SF, 42, THREADS),
        ExecCfg::with_threads(THREADS),
    );
    for q in [QueryId::Q6, QueryId::Q1] {
        for engine in [Engine::Typer, Engine::Tectorwise] {
            let (r_flat, s_flat) = flat.prepare(q).run_with_stats(engine);
            let (r_enc, s_enc) = enc.prepare(q).run_with_stats(engine);
            assert_eq!(
                r_flat,
                r_enc,
                "{} on {engine:?}: encoded result differs",
                q.name()
            );
            assert!(
                s_flat.bytes_scanned > 0 && s_enc.bytes_scanned > 0,
                "{} on {engine:?}: bytes_scanned not recorded (flat {}, encoded {})",
                q.name(),
                s_flat.bytes_scanned,
                s_enc.bytes_scanned
            );
            assert!(
                s_enc.bytes_scanned * 2 <= s_flat.bytes_scanned,
                "{} on {engine:?}: encoded scan reads {} bytes, flat {} — less than the 2x bar",
                q.name(),
                s_enc.bytes_scanned,
                s_flat.bytes_scanned
            );
        }
        // Volcano ignores companions: same plan, same flat byte volume.
        let (rv_flat, sv_flat) = flat.prepare(q).run_with_stats(Engine::Volcano);
        let (rv_enc, sv_enc) = enc.prepare(q).run_with_stats(Engine::Volcano);
        assert_eq!(rv_flat, rv_enc, "{}: volcano result differs", q.name());
        assert_eq!(
            sv_flat.bytes_scanned,
            sv_enc.bytes_scanned,
            "{}: volcano must scan flat columns regardless of companions",
            q.name()
        );
    }
}
