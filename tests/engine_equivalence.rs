//! Cross-engine result validation: the paper's methodology only holds if
//! Typer, Tectorwise and the Volcano baseline compute identical results
//! for identical plans. Every query is checked at two scale factors,
//! plus Tectorwise under SIMD, odd vector sizes, multiple threads, and
//! hash-function swaps — none of which may change a single output row.

use db_engine_paradigms::prelude::*;

fn tpch_db() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::tpch::generate(0.05, 42))
}

fn ssb_db() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::ssb::generate(0.05, 42))
}

fn tpch_db_001() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::tpch::generate(0.01, 42))
}

fn ssb_db_001() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::ssb::generate(0.01, 42))
}

fn tpch_db_enc() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::tpch::generate_encoded(0.01, 42))
}

fn ssb_db_enc() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::ssb::generate_encoded(0.01, 42))
}

fn db_for(q: QueryId) -> &'static Database {
    if QueryId::TPCH.contains(&q) {
        tpch_db()
    } else {
        ssb_db()
    }
}

fn db_for_001(q: QueryId) -> &'static Database {
    if QueryId::TPCH.contains(&q) {
        tpch_db_001()
    } else {
        ssb_db_001()
    }
}

fn assert_equal(q: QueryId, a: &QueryResult, b: &QueryResult, what: &str) {
    assert_eq!(a.columns, b.columns, "{}: column mismatch on {what}", q.name());
    assert_eq!(
        a.rows.len(),
        b.rows.len(),
        "{}: row count mismatch on {what}",
        q.name()
    );
    for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        assert_eq!(ra, rb, "{}: row {i} differs on {what}", q.name());
    }
}

/// Every registered query — the paper's 5 TPC-H + the Q4/Q12/Q14
/// workload broadening + the 4 SSB flights.
const ALL: [QueryId; 12] = QueryId::ALL;

/// All 36 (engine, query) pairs at SF 0.01: every registered query on
/// every paradigm, identical `QueryResult`s (the acceptance bar of the
/// registry refactor and of the Q4/Q12/Q14 expansion).
#[test]
fn all_36_engine_query_pairs_agree_at_sf_001() {
    for q in ALL {
        let db = db_for_001(q);
        let cfg = ExecCfg::default();
        let results: Vec<QueryResult> = Engine::ALL.iter().map(|&e| run(e, q, db, &cfg)).collect();
        assert!(!results[0].is_empty(), "{}: empty result", q.name());
        assert_equal(q, &results[0], &results[1], "typer vs tectorwise");
        assert_equal(q, &results[0], &results[2], "typer vs volcano");
    }
}

/// Compressed companions must be invisible in every result: all 36
/// (engine, query) pairs on an encoded database, under every
/// `SimdPolicy`, must match the flat database bit-for-bit. Plans with
/// fused-scan variants switch to them automatically; the rest must be
/// unperturbed by the companions' presence.
#[test]
fn encoded_storage_agrees_with_flat_on_all_36_pairs() {
    for q in ALL {
        let (flat, enc) = if QueryId::TPCH.contains(&q) {
            (tpch_db_001(), tpch_db_enc())
        } else {
            (ssb_db_001(), ssb_db_enc())
        };
        assert!(enc.is_encoded(), "fixture lost its companions");
        let reference = run(Engine::Typer, q, flat, &ExecCfg::default());
        for &e in Engine::ALL.iter() {
            for policy in [SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto] {
                let cfg = ExecCfg {
                    policy,
                    ..Default::default()
                };
                let r = run(e, q, enc, &cfg);
                assert_equal(q, &reference, &r, &format!("encoded {e:?} {policy:?}"));
            }
        }
    }
}

/// Encoded scans must also commute with morsel parallelism: the
/// `PackedReader` mid-column cursor starts and the fused kernels' chunk
/// boundaries shift with the thread count, the results must not.
#[test]
fn encoded_storage_threads_do_not_change_results() {
    for q in [QueryId::Q1, QueryId::Q6, QueryId::Q14, QueryId::Ssb1_1] {
        let enc = if QueryId::TPCH.contains(&q) {
            tpch_db_enc()
        } else {
            ssb_db_enc()
        };
        let single = run(Engine::Typer, q, enc, &ExecCfg::default());
        for threads in [2usize, 4, 8] {
            let cfg = ExecCfg::with_threads(threads);
            assert_equal(
                q,
                &single,
                &run(Engine::Typer, q, enc, &cfg),
                &format!("encoded typer {threads} threads"),
            );
            assert_equal(
                q,
                &single,
                &run(Engine::Tectorwise, q, enc, &cfg),
                &format!("encoded tectorwise {threads} threads"),
            );
        }
    }
}

/// The registry is complete and self-consistent: one plan per
/// `QueryId`, ids unique, lookup total. (Registry *order* vs
/// `QueryId::ALL` is pinned by a unit test inside `dbep-queries`.)
#[test]
fn registry_covers_every_query_exactly_once() {
    use dbep_queries::{plan, QueryId, REGISTRY};
    assert_eq!(REGISTRY.len(), QueryId::ALL.len());
    for q in QueryId::ALL {
        assert_eq!(plan(q).id(), q, "registry lookup roundtrip for {}", q.name());
    }
    let mut names: Vec<&str> = REGISTRY.iter().map(|p| p.id().name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), REGISTRY.len(), "duplicate registry entries");
}

#[test]
fn typer_equals_tectorwise_equals_volcano() {
    for q in ALL {
        let db = db_for(q);
        let cfg = ExecCfg::default();
        let typer = run(Engine::Typer, q, db, &cfg);
        let tw = run(Engine::Tectorwise, q, db, &cfg);
        let volcano = run(Engine::Volcano, q, db, &cfg);
        assert!(!typer.is_empty(), "{}: empty result", q.name());
        assert_equal(q, &typer, &tw, "typer vs tectorwise");
        assert_equal(q, &typer, &volcano, "typer vs volcano");
    }
}

/// Volcano's exchange-style parallel union must not change results.
#[test]
fn volcano_threads_do_not_change_results() {
    for q in ALL {
        let db = db_for_001(q);
        let single = run(Engine::Volcano, q, db, &ExecCfg::default());
        for threads in [2usize, 4] {
            let cfg = ExecCfg::with_threads(threads);
            let parallel = run(Engine::Volcano, q, db, &cfg);
            assert_equal(q, &single, &parallel, &format!("volcano {threads} threads"));
        }
    }
}

#[test]
fn simd_policy_does_not_change_results() {
    for q in ALL {
        let db = db_for(q);
        let scalar = run(Engine::Tectorwise, q, db, &ExecCfg::default());
        for policy in [SimdPolicy::Simd, SimdPolicy::Auto] {
            let cfg = ExecCfg {
                policy,
                ..Default::default()
            };
            let r = run(Engine::Tectorwise, q, db, &cfg);
            assert_equal(q, &scalar, &r, &format!("{policy:?}"));
        }
    }
}

#[test]
fn vector_size_does_not_change_results() {
    for q in ALL {
        let db = db_for(q);
        let reference = run(Engine::Tectorwise, q, db, &ExecCfg::default());
        for vs in [1usize, 3, 17, 255, 8192, usize::MAX] {
            let cfg = ExecCfg {
                vector_size: vs.min(1 << 20),
                ..Default::default()
            };
            let r = run(Engine::Tectorwise, q, db, &cfg);
            assert_equal(q, &reference, &r, &format!("vector size {vs}"));
        }
    }
}

#[test]
fn threads_do_not_change_results() {
    for q in ALL {
        let db = db_for(q);
        let single = run(Engine::Typer, q, db, &ExecCfg::default());
        for threads in [2usize, 4, 8] {
            let cfg = ExecCfg::with_threads(threads);
            let typer = run(Engine::Typer, q, db, &cfg);
            assert_equal(q, &single, &typer, &format!("typer {threads} threads"));
            let tw = run(Engine::Tectorwise, q, db, &cfg);
            assert_equal(q, &single, &tw, &format!("tectorwise {threads} threads"));
        }
    }
}

#[test]
fn hash_function_swap_does_not_change_results() {
    for q in ALL {
        let db = db_for(q);
        let reference = run(Engine::Typer, q, db, &ExecCfg::default());
        for hash in [HashFn::Murmur2, HashFn::Crc] {
            let cfg = ExecCfg {
                hash: Some(hash),
                ..Default::default()
            };
            assert_equal(
                q,
                &reference,
                &run(Engine::Typer, q, db, &cfg),
                &format!("typer {hash:?}"),
            );
            assert_equal(
                q,
                &reference,
                &run(Engine::Tectorwise, q, db, &cfg),
                &format!("tectorwise {hash:?}"),
            );
        }
    }
}

#[test]
fn throttled_scan_changes_time_not_results() {
    let db = tpch_db();
    let reference = run(Engine::Typer, QueryId::Q6, db, &ExecCfg::default());
    let throttle = dbep_storage::throttle::Throttle::new(200.0e6);
    let cfg = ExecCfg {
        throttle: Some(&throttle),
        ..Default::default()
    };
    let throttled = run(Engine::Typer, QueryId::Q6, db, &cfg);
    assert_equal(QueryId::Q6, &reference, &throttled, "throttled");
    assert!(throttle.total_consumed() > 0, "throttle must have been exercised");
}

/// The throttle now applies to the Volcano paradigm too (unified
/// `ExecCfg` across all three engines).
#[test]
fn volcano_throttled_scan_changes_time_not_results() {
    let db = tpch_db_001();
    let reference = run(Engine::Volcano, QueryId::Q6, db, &ExecCfg::default());
    let throttle = dbep_storage::throttle::Throttle::new(500.0e6);
    let cfg = ExecCfg {
        throttle: Some(&throttle),
        ..Default::default()
    };
    let throttled = run(Engine::Volcano, QueryId::Q6, db, &cfg);
    assert_equal(QueryId::Q6, &reference, &throttled, "volcano throttled");
    assert!(
        throttle.total_consumed() > 0,
        "volcano scans must debit the throttle"
    );
}

#[test]
fn q1_shape_matches_spec() {
    // Q1 must produce exactly the four (returnflag, linestatus) groups in
    // order.
    let r = run(Engine::Typer, QueryId::Q1, tpch_db(), &ExecCfg::default());
    let keys: Vec<(String, String)> = r
        .rows
        .iter()
        .map(|row| (row[0].to_string(), row[1].to_string()))
        .collect();
    assert_eq!(
        keys,
        vec![
            ("A".into(), "F".into()),
            ("N".into(), "F".into()),
            ("N".into(), "O".into()),
            ("R".into(), "F".into()),
        ]
    );
}

#[test]
fn q3_and_q18_respect_limits() {
    let q3 = run(Engine::Typer, QueryId::Q3, tpch_db(), &ExecCfg::default());
    assert!(q3.len() <= 10);
    // Revenue must be non-increasing.
    for w in q3.rows.windows(2) {
        assert!(w[0][1] >= w[1][1], "q3 not sorted by revenue desc");
    }
    let q18 = run(Engine::Typer, QueryId::Q18, tpch_db(), &ExecCfg::default());
    assert!(q18.len() <= 100);
    for w in q18.rows.windows(2) {
        assert!(w[0][4] >= w[1][4], "q18 not sorted by totalprice desc");
    }
}

#[test]
fn q4_q12_q14_shapes_match_spec() {
    let db = tpch_db();
    let cfg = ExecCfg::default();
    // Q4: at most the five spec priorities, ordered ascending, all counts
    // positive.
    let q4 = run(Engine::Typer, QueryId::Q4, db, &cfg);
    assert!((1..=5).contains(&q4.len()), "q4 group count {}", q4.len());
    let prios: Vec<String> = q4.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(
        prios.windows(2).all(|w| w[0] < w[1]),
        "q4 not ordered by priority"
    );
    for row in &q4.rows {
        assert!(row[0].to_string().as_bytes()[0].is_ascii_digit());
        assert!(row[1] > Value::I64(0), "q4 empty group emitted");
    }
    // Q12: exactly the IN-list groups, MAIL before SHIP, both CASE arms
    // populated at SF 0.05.
    let q12 = run(Engine::Typer, QueryId::Q12, db, &cfg);
    let modes: Vec<String> = q12.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(modes, vec!["MAIL".to_string(), "SHIP".to_string()]);
    for row in &q12.rows {
        assert!(row[1] > Value::I64(0) && row[2] > Value::I64(0), "empty CASE arm");
    }
    // Q14: a single ratio row; PROMO types are ~1/6 of parts, so the
    // promo-revenue percentage sits well inside (0, 100).
    let q14 = run(Engine::Typer, QueryId::Q14, db, &cfg);
    assert_eq!(q14.len(), 1);
    match q14.rows[0][0] {
        Value::Dec { digits, scale: 4 } => {
            assert!(
                (50_000..500_000).contains(&digits),
                "promo_revenue {digits} (scale 4) far from the ~16.7% spec selectivity"
            );
        }
        ref other => panic!("unexpected promo_revenue value {other:?}"),
    }
}

#[test]
fn oltp_lookups_agree_across_engines() {
    let db = tpch_db();
    let idx = dbep_queries::oltp::OltpIndex::build(db, HashFn::Crc);
    let mut scratch = dbep_queries::oltp::TwLookupScratch::new();
    let n_orders = db.table("orders").len() as i32;
    for orderkey in [1, 2, 77, n_orders / 2, n_orders] {
        let t = dbep_queries::oltp::lookup_typer(db, &idx, orderkey).expect("order exists");
        let v =
            dbep_queries::oltp::lookup_tectorwise(db, &idx, orderkey, &mut scratch).expect("order exists");
        let w = dbep_queries::oltp::lookup_volcano(db, orderkey).expect("order exists");
        assert_eq!(t, v, "typer vs tectorwise, order {orderkey}");
        assert_eq!(t, w, "typer vs volcano, order {orderkey}");
        assert!(t.line_count >= 1 && t.line_count <= 7);
    }
    // Missing key behaves identically.
    assert!(dbep_queries::oltp::lookup_typer(db, &idx, n_orders + 1).is_none());
    assert!(dbep_queries::oltp::lookup_volcano(db, n_orders + 1).is_none());
}
