//! Pin test: `Session::prepare` with default `Params` must reproduce
//! the pre-redesign (hardcoded-constant) results **exactly**.
//!
//! The fingerprints below were computed from the engine outputs at
//! TPC-H/SSB SF 0.01, seed 42, immediately before the substitution
//! constants moved out of the engine bodies into `dbep_queries::params`.
//! Any change here means the redesign (or a later edit) altered query
//! semantics, not just plumbing.

use db_engine_paradigms::prelude::*;

/// FNV-1a over a canonical rendering (column names, then each row's
/// values, `|`-separated) — stable across platforms.
fn fingerprint(r: &QueryResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for c in &r.columns {
        eat(&mut h, c.as_bytes());
        eat(&mut h, b"|");
    }
    for row in &r.rows {
        for v in row {
            eat(&mut h, v.to_string().as_bytes());
            eat(&mut h, b"|");
        }
        eat(&mut h, b"\n");
    }
    h
}

/// (query, fingerprint of the Typer result at SF 0.01 / seed 42) —
/// recorded from the pre-params-redesign tree.
const PINNED: [(QueryId, u64); 12] = [
    (QueryId::Q1, 0xf32e1e766bfd3de7),
    (QueryId::Q6, 0xf4c67754eb2e494d),
    (QueryId::Q3, 0x708e092adda3185f),
    (QueryId::Q9, 0x2867bddcfef17d6e),
    (QueryId::Q18, 0x8b23d19d6b810b6b),
    (QueryId::Q4, 0x412fe58eb17617c6),
    (QueryId::Q12, 0x4963a08874e876cc),
    (QueryId::Q14, 0xaabd07fcbdda713a),
    (QueryId::Ssb1_1, 0xf06e975de00c1ecb),
    (QueryId::Ssb2_1, 0x9ea1240cf6a68500),
    (QueryId::Ssb3_1, 0x70b4e18c6a863aac),
    (QueryId::Ssb4_1, 0x3689b1501b7077be),
];

#[test]
fn default_params_reproduce_pre_redesign_results() {
    let tpch = Session::new(dbep_datagen::tpch::generate(0.01, 42));
    let ssb = Session::new(dbep_datagen::ssb::generate(0.01, 42));
    for (q, expected) in PINNED {
        let session = if QueryId::SSB.contains(&q) { &ssb } else { &tpch };
        let prepared = session.prepare(q);
        let got = fingerprint(&prepared.run(Engine::Typer));
        assert_eq!(
            got,
            expected,
            "{}: default-params result drifted from the pre-redesign pin (got 0x{got:016x})",
            q.name()
        );
        // The free function must stay a thin default-params wrapper.
        let free = run(Engine::Typer, q, session.db(), session.cfg());
        assert_eq!(fingerprint(&free), expected, "{}: free run() drifted", q.name());
    }
}
