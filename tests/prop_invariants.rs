//! Property-based tests on the core data structures and primitives.
//!
//! Strategy: every SIMD/vectorized/concurrent fast path must agree with
//! a trivially correct model (`std` collections, plain loops) on
//! arbitrary inputs — the invariants the whole study rests on.

use db_engine_paradigms::prelude::*;
use dbep_core::runtime::agg_ht::merge_partitions;
use dbep_core::runtime::join_ht::{JoinHt, JoinHtShard};
use dbep_core::runtime::{murmur2, GroupByShard, Morsels};
use dbep_core::storage::types::{civil, date, format_date, parse_date};
use dbep_core::storage::StrColumn;
use dbep_core::vectorized::{gather, hashp, sel};
use proptest::prelude::*;
use std::collections::HashMap;

fn all_policies() -> Vec<SimdPolicy> {
    vec![SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- selection primitives ≡ filter model, every policy -----

    #[test]
    fn dense_selection_matches_model(col in prop::collection::vec(-1000i32..1000, 0..300), c in -1000i32..1000) {
        let model: Vec<u32> = (0..col.len()).filter(|&i| col[i] < c).map(|i| i as u32).collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            sel::sel_lt_i32_dense(&col, c, 0, &mut out, policy);
            prop_assert_eq!(&out, &model, "policy {:?}", policy);
        }
    }

    #[test]
    fn sparse_selection_matches_model(
        col in prop::collection::vec(-100i64..100, 1..300),
        mask in prop::collection::vec(any::<bool>(), 1..300),
        lo in -100i64..100,
        span in 0i64..50,
    ) {
        let n = col.len().min(mask.len());
        let in_sel: Vec<u32> = (0..n).filter(|&i| mask[i]).map(|i| i as u32).collect();
        let hi = lo + span;
        let model: Vec<u32> = in_sel.iter().copied()
            .filter(|&i| col[i as usize] >= lo && col[i as usize] <= hi)
            .collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            sel::sel_between_i64_sparse(&col, lo, hi, &in_sel, &mut out, policy);
            prop_assert_eq!(&out, &model, "policy {:?}", policy);
        }
    }

    // ----- gathers and hash primitives ≡ map model -----

    #[test]
    fn gather_matches_model(
        col in prop::collection::vec(any::<i64>(), 1..500),
        idx in prop::collection::vec(any::<prop::sample::Index>(), 0..200),
    ) {
        let sel_v: Vec<u32> = idx.iter().map(|i| i.index(col.len()) as u32).collect();
        let model: Vec<i64> = sel_v.iter().map(|&i| col[i as usize]).collect();
        for policy in [SimdPolicy::Scalar, SimdPolicy::Simd] {
            let mut out = Vec::new();
            gather::gather_i64(&col, &sel_v, policy, &mut out);
            prop_assert_eq!(&out, &model, "policy {:?}", policy);
        }
    }

    #[test]
    fn simd_hash_matches_scalar(keys in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        hashp::murmur2_u64_vec(&keys, SimdPolicy::Scalar, &mut scalar);
        hashp::murmur2_u64_vec(&keys, SimdPolicy::Simd, &mut simd);
        prop_assert_eq!(scalar, simd);
    }

    // ----- join hash table ≡ HashMap multimap model -----

    #[test]
    fn join_ht_matches_multimap(
        build in prop::collection::vec((0i32..64, any::<i64>()), 0..300),
        probe in prop::collection::vec(0i32..128, 0..300),
    ) {
        let ht = JoinHt::build(build.iter().map(|&(k, v)| (murmur2(k as u64), (k, v))));
        let mut model: HashMap<i32, Vec<i64>> = HashMap::new();
        for &(k, v) in &build {
            model.entry(k).or_default().push(v);
        }
        for &k in &probe {
            let mut got: Vec<i64> = ht.probe(murmur2(k as u64))
                .filter(|e| e.row.0 == k)
                .map(|e| e.row.1)
                .collect();
            got.sort_unstable();
            let mut want = model.get(&k).cloned().unwrap_or_default();
            want.sort_unstable();
            prop_assert_eq!(got, want, "key {}", k);
        }
    }

    #[test]
    fn parallel_join_build_matches_serial(
        rows in prop::collection::vec((any::<i32>(), any::<i64>()), 0..500),
    ) {
        let serial = JoinHt::build(rows.iter().map(|&(k, v)| (murmur2(k as u64), (k, v))));
        let mut shards: Vec<JoinHtShard<(i32, i64)>> = (0..4).map(|_| JoinHtShard::new()).collect();
        for (i, &(k, v)) in rows.iter().enumerate() {
            shards[i % 4].push(murmur2(k as u64), (k, v));
        }
        let parallel = JoinHt::from_shards(shards, 4);
        prop_assert_eq!(serial.len(), parallel.len());
        for &(k, _) in &rows {
            let count = |ht: &JoinHt<(i32, i64)>| {
                ht.probe(murmur2(k as u64)).filter(|e| e.row.0 == k).count()
            };
            prop_assert_eq!(count(&serial), count(&parallel), "key {}", k);
        }
    }

    // ----- two-phase group-by ≡ HashMap aggregation model -----

    #[test]
    fn group_by_matches_hashmap(
        keys in prop::collection::vec(0u64..100, 0..1000),
        cap in 1usize..64,
        shard_count in 1usize..4,
    ) {
        let mut shards = Vec::new();
        for s in 0..shard_count {
            let mut shard: GroupByShard<u64, i64> = GroupByShard::new(cap);
            for (i, &k) in keys.iter().enumerate() {
                if i % shard_count == s {
                    shard.update(murmur2(k), k, || 0, |a| *a += 1);
                }
            }
            shards.push(shard.finish());
        }
        let merged = merge_partitions(shards, 2, |a, b| *a += b);
        let mut model: HashMap<u64, i64> = HashMap::new();
        for &k in &keys {
            *model.entry(k).or_insert(0) += 1;
        }
        prop_assert_eq!(merged.len(), model.len());
        for (k, v) in merged {
            prop_assert_eq!(v, model[&k], "group {}", k);
        }
    }

    // ----- storage scalar types -----

    #[test]
    fn date_roundtrip(days in -200_000i32..200_000) {
        let (y, m, d) = civil(days);
        prop_assert_eq!(date(y, m, d), days);
        prop_assert_eq!(parse_date(&format_date(days)), Some(days));
    }

    #[test]
    fn str_column_roundtrip(strings in prop::collection::vec(".{0,40}", 0..50)) {
        let col: StrColumn = strings.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(col.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(col.get(i), s.as_str());
        }
    }

    // ----- morsel dispenser covers every tuple exactly once -----

    #[test]
    fn morsels_tile_exactly(total in 0usize..100_000, size in 1usize..5_000) {
        let m = Morsels::with_size(total, size);
        let mut covered = 0usize;
        let mut next_expected = 0usize;
        while let Some(r) = m.claim() {
            prop_assert_eq!(r.start, next_expected);
            covered += r.len();
            next_expected = r.end;
        }
        prop_assert_eq!(covered, total);
    }

    // ----- shared result ordering is total and deterministic -----

    #[test]
    fn result_sort_is_total(vals in prop::collection::vec((any::<i64>(), 0i64..5), 0..100)) {
        use dbep_core::queries::result::{OrderBy, QueryResult};
        let rows: Vec<Vec<Value>> = vals.iter()
            .map(|&(a, b)| vec![Value::I64(a), Value::I64(b)])
            .collect();
        let r1 = QueryResult::new(&["a", "b"], rows.clone(), &[OrderBy::desc(1)], None);
        let mut shuffled = rows;
        shuffled.reverse();
        let r2 = QueryResult::new(&["a", "b"], shuffled, &[OrderBy::desc(1)], None);
        prop_assert_eq!(r1, r2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // ----- end-to-end: arbitrary tiny databases, all engines agree -----

    #[test]
    fn engines_agree_on_arbitrary_seeds(seed in 0u64..1000) {
        let db = dbep_datagen::tpch::generate(0.01, seed);
        let cfg = ExecCfg::default();
        for q in [QueryId::Q6, QueryId::Q1] {
            let typer = run(Engine::Typer, q, &db, &cfg);
            let tw = run(Engine::Tectorwise, q, &db, &cfg);
            prop_assert_eq!(&typer, &tw, "{} seed {}", q.name(), seed);
        }
    }
}
