//! Property-style tests on the core data structures and primitives.
//!
//! Strategy: every SIMD/vectorized/concurrent fast path must agree with
//! a trivially correct model (`std` collections, plain loops) on
//! randomized inputs — the invariants the whole study rests on. Inputs
//! are drawn from the in-tree deterministic PRNG (the workspace is
//! dependency-free, so no proptest): many seeded cases per property,
//! fully reproducible.

use db_engine_paradigms::prelude::*;
use dbep_core::runtime::agg_ht::merge_partitions;
use dbep_core::runtime::join_ht::{JoinHt, JoinHtShard};
use dbep_core::runtime::rng::SmallRng;
use dbep_core::runtime::{murmur2, GroupByShard, Morsels};
use dbep_core::storage::types::{civil, date, format_date, parse_date};
use dbep_core::storage::StrColumn;
use dbep_core::vectorized::{gather, hashp, map, probe, sel};
use std::collections::HashMap;

const CASES: u64 = 64;

fn all_policies() -> Vec<SimdPolicy> {
    vec![SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto]
}

// ----- selection primitives ≡ filter model, every policy -----

#[test]
fn dense_selection_matches_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5e1 ^ case);
        let n = rng.gen_range(0usize..300);
        let col: Vec<i32> = (0..n).map(|_| rng.gen_range(-1000i32..1000)).collect();
        let c = rng.gen_range(-1000i32..1000);
        let model: Vec<u32> = (0..n).filter(|&i| col[i] < c).map(|i| i as u32).collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            sel::sel_lt_i32_dense(&col, c, 0, &mut out, policy);
            assert_eq!(out, model, "case {case} policy {policy:?}");
        }
    }
}

#[test]
fn sparse_selection_matches_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5b2 ^ case);
        let n = rng.gen_range(1usize..300);
        let col: Vec<i64> = (0..n).map(|_| rng.gen_range(-100i64..100)).collect();
        let in_sel: Vec<u32> = (0..n).filter(|_| rng.gen_bool(0.5)).map(|i| i as u32).collect();
        let lo = rng.gen_range(-100i64..100);
        let hi = lo + rng.gen_range(0i64..50);
        let model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| col[i as usize] >= lo && col[i as usize] <= hi)
            .collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            sel::sel_between_i64_sparse(&col, lo, hi, &in_sel, &mut out, policy);
            assert_eq!(out, model, "case {case} policy {policy:?}");
        }
    }
}

#[test]
fn col_col_selection_matches_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xcc1 ^ case);
        let n = rng.gen_range(0usize..300);
        let a: Vec<i32> = (0..n).map(|_| rng.gen_range(-50i32..50)).collect();
        let b: Vec<i32> = (0..n).map(|_| rng.gen_range(-50i32..50)).collect();
        let dense_model: Vec<u32> = (0..n).filter(|&i| a[i] < b[i]).map(|i| i as u32).collect();
        let in_sel: Vec<u32> = (0..n).filter(|_| rng.gen_bool(0.6)).map(|i| i as u32).collect();
        let sparse_model: Vec<u32> = in_sel
            .iter()
            .copied()
            .filter(|&i| a[i as usize] < b[i as usize])
            .collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            sel::sel_lt_i32_col_dense(&a, &b, 0, &mut out, policy);
            assert_eq!(out, dense_model, "dense case {case} policy {policy:?}");
            sel::sel_lt_i32_col_sparse(&a, &b, &in_sel, &mut out, policy);
            assert_eq!(out, sparse_model, "sparse case {case} policy {policy:?}");
        }
    }
}

// ----- semi-join probe ≡ HashSet-membership model, every policy -----

#[test]
fn semijoin_probe_matches_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5e31 ^ case);
        let nb = rng.gen_range(0usize..300);
        // Duplicate-heavy build side: semi-join must not fan out.
        let build: Vec<i32> = (0..nb).map(|_| rng.gen_range(0i32..64)).collect();
        let np = rng.gen_range(0usize..300);
        let probe_keys: Vec<i32> = (0..np).map(|_| rng.gen_range(0i32..128)).collect();
        let ht = JoinHt::build(build.iter().map(|&k| (murmur2(k as u64), k)));
        let set: std::collections::HashSet<i32> = build.iter().copied().collect();
        let mut model: Vec<u32> = (0..np as u32)
            .filter(|&t| set.contains(&probe_keys[t as usize]))
            .collect();
        model.sort_unstable();
        // The runtime's scalar existence path agrees with the set model.
        for (t, &k) in probe_keys.iter().enumerate() {
            assert_eq!(
                ht.contains(murmur2(k as u64), |r| *r == k),
                set.contains(&k),
                "case {case} tuple {t}"
            );
        }
        // The vectorized primitive agrees under every policy.
        let hashes: Vec<u64> = probe_keys.iter().map(|&k| murmur2(k as u64)).collect();
        let tuples: Vec<u32> = (0..np as u32).collect();
        for policy in all_policies() {
            let mut bufs = probe::ProbeBuffers::new();
            let n = probe::probe_semijoin(
                &ht,
                &hashes,
                &tuples,
                |r, t| *r == probe_keys[t as usize],
                policy,
                &mut bufs,
            );
            let mut got = bufs.match_tuple.clone();
            got.sort_unstable();
            assert_eq!(n, got.len(), "case {case} policy {policy:?}");
            assert_eq!(got, model, "case {case} policy {policy:?}");
        }
    }
}

// ----- string prefix-match flags ≡ starts_with model, every policy -----

#[test]
fn str_prefix_flags_match_model() {
    let alphabet = [b'P', b'R', b'O', b'M', b'X'];
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9ef1 ^ case);
        let n = rng.gen_range(0usize..200);
        // Strings from a tiny alphabet so prefixes actually collide.
        let strings: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.gen_range(0usize..8);
                (0..len)
                    .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
                    .collect()
            })
            .collect();
        let col: StrColumn = strings.iter().map(|s| s.as_str()).collect();
        let sel_v: Vec<u32> = (0..n).filter(|_| rng.gen_bool(0.7)).map(|i| i as u32).collect();
        let plen = rng.gen_range(0usize..5);
        let prefix: Vec<u8> = (0..plen)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        let model: Vec<u8> = sel_v
            .iter()
            .map(|&i| strings[i as usize].as_bytes().starts_with(&prefix) as u8)
            .collect();
        for policy in all_policies() {
            let mut out = Vec::new();
            map::map_str_prefix_flags(&col, &sel_v, &prefix, policy, &mut out);
            assert_eq!(out, model, "case {case} policy {policy:?}");
        }
    }
}

// ----- conditional aggregation primitives ≡ filter-sum model -----

#[test]
fn conditional_sum_and_count_match_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xca5e ^ case);
        let n = rng.gen_range(0usize..400);
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let flags: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..3) as u8).collect();
        let model_sum: i64 = vals
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f != 0)
            .map(|(&v, _)| v)
            .sum();
        let model_count = flags.iter().filter(|&&f| f != 0).count() as i64;
        for policy in all_policies() {
            assert_eq!(
                map::sum_i64_where_u8(&vals, &flags, policy),
                model_sum,
                "case {case} policy {policy:?}"
            );
            assert_eq!(
                map::count_nonzero_u8(&flags, policy),
                model_count,
                "case {case} policy {policy:?}"
            );
        }
    }
}

// ----- gathers and hash primitives ≡ map model -----

#[test]
fn gather_matches_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x6a7 ^ case);
        let n = rng.gen_range(1usize..500);
        let col: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
        let m = rng.gen_range(0usize..200);
        let sel_v: Vec<u32> = (0..m).map(|_| rng.gen_range(0usize..n) as u32).collect();
        let model: Vec<i64> = sel_v.iter().map(|&i| col[i as usize]).collect();
        for policy in [SimdPolicy::Scalar, SimdPolicy::Simd] {
            let mut out = Vec::new();
            gather::gather_i64(&col, &sel_v, policy, &mut out);
            assert_eq!(out, model, "case {case} policy {policy:?}");
        }
    }
}

#[test]
fn simd_hash_matches_scalar() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4a5 ^ case);
        let n = rng.gen_range(0usize..200);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        hashp::murmur2_u64_vec(&keys, SimdPolicy::Scalar, &mut scalar);
        hashp::murmur2_u64_vec(&keys, SimdPolicy::Simd, &mut simd);
        assert_eq!(scalar, simd, "case {case}");
    }
}

// ----- join hash table ≡ HashMap multimap model -----

#[test]
fn join_ht_matches_multimap() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1a1 ^ case);
        let nb = rng.gen_range(0usize..300);
        let build: Vec<(i32, i64)> = (0..nb)
            .map(|_| (rng.gen_range(0i32..64), rng.next_u64() as i64))
            .collect();
        let np = rng.gen_range(0usize..300);
        let probe: Vec<i32> = (0..np).map(|_| rng.gen_range(0i32..128)).collect();
        let ht = JoinHt::build(build.iter().map(|&(k, v)| (murmur2(k as u64), (k, v))));
        let mut model: HashMap<i32, Vec<i64>> = HashMap::new();
        for &(k, v) in &build {
            model.entry(k).or_default().push(v);
        }
        for &k in &probe {
            let mut got: Vec<i64> = ht
                .probe(murmur2(k as u64))
                .filter(|e| e.row.0 == k)
                .map(|e| e.row.1)
                .collect();
            got.sort_unstable();
            let mut want = model.get(&k).cloned().unwrap_or_default();
            want.sort_unstable();
            assert_eq!(got, want, "case {case} key {k}");
        }
    }
}

#[test]
fn parallel_join_build_matches_serial() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9b3 ^ case);
        let n = rng.gen_range(0usize..500);
        let rows: Vec<(i32, i64)> = (0..n)
            .map(|_| (rng.next_u64() as i32, rng.next_u64() as i64))
            .collect();
        let serial = JoinHt::build(rows.iter().map(|&(k, v)| (murmur2(k as u64), (k, v))));
        let mut shards: Vec<JoinHtShard<(i32, i64)>> = (0..4).map(|_| JoinHtShard::new()).collect();
        for (i, &(k, v)) in rows.iter().enumerate() {
            shards[i % 4].push(murmur2(k as u64), (k, v));
        }
        let parallel = JoinHt::from_shards(shards, &db_engine_paradigms::runtime::ExecCtx::spawn(4));
        assert_eq!(serial.len(), parallel.len(), "case {case}");
        for &(k, _) in &rows {
            let count =
                |ht: &JoinHt<(i32, i64)>| ht.probe(murmur2(k as u64)).filter(|e| e.row.0 == k).count();
            assert_eq!(count(&serial), count(&parallel), "case {case} key {k}");
        }
    }
}

// ----- two-phase group-by ≡ HashMap aggregation model -----

#[test]
fn group_by_matches_hashmap() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x6b4 ^ case);
        let n = rng.gen_range(0usize..1000);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100)).collect();
        let cap = rng.gen_range(1usize..64);
        let shard_count = rng.gen_range(1usize..4);
        let mut shards = Vec::new();
        for s in 0..shard_count {
            let mut shard: GroupByShard<u64, i64> = GroupByShard::new(cap);
            for (i, &k) in keys.iter().enumerate() {
                if i % shard_count == s {
                    shard.update(murmur2(k), k, || 0, |a| *a += 1);
                }
            }
            shards.push(shard.finish());
        }
        let merged = merge_partitions(
            shards,
            &db_engine_paradigms::runtime::ExecCtx::spawn(2),
            |a, b| *a += b,
        );
        let mut model: HashMap<u64, i64> = HashMap::new();
        for &k in &keys {
            *model.entry(k).or_insert(0) += 1;
        }
        assert_eq!(merged.len(), model.len(), "case {case}");
        for (k, v) in merged {
            assert_eq!(v, model[&k], "case {case} group {k}");
        }
    }
}

// ----- storage scalar types -----

#[test]
fn date_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xda7e);
    for case in 0..2000u32 {
        let days = rng.gen_range(-200_000i32..200_000);
        let (y, m, d) = civil(days);
        assert_eq!(date(y, m, d), days, "case {case}");
        assert_eq!(parse_date(&format_date(days)), Some(days), "case {case}");
    }
}

#[test]
fn str_column_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x57c);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..50);
        let strings: Vec<String> = (0..n)
            .map(|_| {
                // Mix ASCII with arbitrary multi-byte scalars so the
                // byte-offset layout is exercised, not just 1-byte chars.
                let len = rng.gen_range(0usize..40);
                (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            char::from(rng.gen_range(32u32..127) as u8)
                        } else {
                            loop {
                                if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                                    break c;
                                }
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        let col: StrColumn = strings.iter().map(|s| s.as_str()).collect();
        assert_eq!(col.len(), strings.len(), "case {case}");
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(col.get(i), s.as_str(), "case {case} row {i}");
        }
    }
}

// ----- morsel dispenser covers every tuple exactly once -----

#[test]
fn morsels_tile_exactly() {
    let mut rng = SmallRng::seed_from_u64(0x305e1);
    for case in 0..CASES {
        let total = rng.gen_range(0usize..100_000);
        let size = rng.gen_range(1usize..5_000);
        let m = Morsels::with_size(total, size);
        let mut covered = 0usize;
        let mut next_expected = 0usize;
        while let Some(r) = m.claim() {
            assert_eq!(r.start, next_expected, "case {case}");
            covered += r.len();
            next_expected = r.end;
        }
        assert_eq!(covered, total, "case {case}");
    }
}

// ----- shared result ordering is total and deterministic -----

#[test]
fn result_sort_is_total() {
    use dbep_core::queries::result::{OrderBy, QueryResult};
    let mut rng = SmallRng::seed_from_u64(0x50f7);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..100);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                vec![
                    Value::I64(rng.next_u64() as i64),
                    Value::I64(rng.gen_range(0i64..5)),
                ]
            })
            .collect();
        let r1 = QueryResult::new(&["a", "b"], rows.clone(), &[OrderBy::desc(1)], None);
        let mut shuffled = rows;
        shuffled.reverse();
        let r2 = QueryResult::new(&["a", "b"], shuffled, &[OrderBy::desc(1)], None);
        assert_eq!(r1, r2, "case {case}");
    }
}

// ----- end-to-end: arbitrary tiny databases, all engines agree -----

#[test]
fn engines_agree_on_arbitrary_seeds() {
    for seed in 0..16u64 {
        let db = dbep_datagen::tpch::generate(0.01, seed * 61 + 1);
        let cfg = ExecCfg::default();
        for q in [QueryId::Q6, QueryId::Q1, QueryId::Q4, QueryId::Q12, QueryId::Q14] {
            let typer = run(Engine::Typer, q, &db, &cfg);
            let tw = run(Engine::Tectorwise, q, &db, &cfg);
            assert_eq!(typer, tw, "{} seed {seed}", q.name());
        }
    }
}
